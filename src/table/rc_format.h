#ifndef DGF_TABLE_RC_FORMAT_H_
#define DGF_TABLE_RC_FORMAT_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fs/mini_dfs.h"
#include "fs/split.h"
#include "table/record_reader.h"
#include "table/schema.h"

namespace dgf::table {

/// 16-byte marker preceding every row group; split readers scan for it to
/// find the first group inside their byte range, as Hadoop's RCFile does.
inline constexpr char kRcSyncMarker[16] = {
    '\xd6', '\xf1', '\x0c', '\x51', '\x3a', '\x77', '\x19', '\xe4',
    '\x42', '\x88', '\x5b', '\x0d', '\xc3', '\x6e', '\xa1', '\x97'};

/// Columnar row-group file format modeled on Hive's RCFile.
///
/// Layout: repeated row groups, each
///   sync[16] varint(num_rows) varint(num_cols)
///   per column: varint(col_bytes) col_bytes bytes of
///               length-prefixed per-row text-encoded values
///
/// Row groups are the "blocks" that Hive's Compact/Bitmap indexes address:
/// `RcSplitReader::CurrentBlockOffset()` returns the group's sync offset and
/// `CurrentRowInBlock()` the row ordinal, which the Bitmap index records.
class RcFileWriter {
 public:
  struct Options {
    /// Rows buffered per group before flushing.
    int rows_per_group = 4096;
  };

  static Result<std::unique_ptr<RcFileWriter>> Create(
      std::shared_ptr<fs::MiniDfs> dfs, const std::string& path, Schema schema,
      Options options);
  static Result<std::unique_ptr<RcFileWriter>> Create(
      std::shared_ptr<fs::MiniDfs> dfs, const std::string& path,
      Schema schema) {
    return Create(std::move(dfs), path, std::move(schema), Options());
  }

  Status Append(const Row& row);

  /// Forces a row-group boundary now (no-op when nothing is pending). The
  /// DGFIndex builder calls this at each GFU boundary so Slices consist of
  /// whole row groups.
  Status Flush();

  /// Flushes the pending group (if any) and seals the file.
  Status Close();

  uint64_t Offset() const { return writer_->Offset(); }

 private:
  RcFileWriter(std::unique_ptr<fs::DfsWriter> writer, Schema schema,
               Options options);

  Status FlushGroup();

  std::unique_ptr<fs::DfsWriter> writer_;
  Schema schema_;
  Options options_;
  // Pending group, column-major: columns_[c] holds encoded values.
  std::vector<std::string> columns_;
  int pending_rows_ = 0;
};

/// Reads the row groups of one split of an RCFile.
///
/// A group belongs to the split whose byte range contains its sync marker.
/// An optional projection restricts decoding to the named columns; cells of
/// unprojected columns are filled with type-default values (the columnar
/// read saving that makes RCFile the preferred base for Compact indexes).
class RcSplitReader : public RecordReader {
 public:
  static Result<std::unique_ptr<RcSplitReader>> Open(
      std::shared_ptr<fs::MiniDfs> dfs, const fs::FileSplit& split,
      Schema schema,
      std::optional<std::vector<int>> projection = std::nullopt);

  Result<bool> Next(Row* row) override;
  uint64_t CurrentBlockOffset() const override { return group_offset_; }
  uint64_t CurrentRowInBlock() const override { return row_in_group_; }
  uint64_t BytesRead() const override { return bytes_read_; }

  /// Restricts the reader to the given rows of the given groups: the Bitmap
  /// index pushes its (block offset -> row bitmap) result here. Groups not
  /// mentioned are skipped entirely.
  void SetRowFilter(std::vector<std::pair<uint64_t, std::vector<uint64_t>>>
                        groups_and_rows);

 private:
  RcSplitReader(std::unique_ptr<fs::DfsReader> reader, fs::FileSplit split,
                Schema schema, std::optional<std::vector<int>> projection);

  /// Loads the next group whose sync lies inside the split; false at end.
  Result<bool> LoadNextGroup();
  Status EnsureBuffered(uint64_t file_offset, uint64_t length);
  Result<int64_t> FindSync(uint64_t from_offset);

  std::unique_ptr<fs::DfsReader> reader_;
  fs::FileSplit split_;
  Schema schema_;
  std::optional<std::vector<int>> projection_;

  std::string buffer_;
  uint64_t buffer_start_ = 0;  // file offset of buffer_[0]
  uint64_t bytes_read_ = 0;

  uint64_t scan_pos_ = 0;  // file offset where the next sync search begins
  bool done_ = false;

  // Decoded current group (row-major for simplicity after decode).
  std::vector<Row> group_rows_;
  uint64_t group_offset_ = 0;
  uint64_t row_in_group_ = 0;
  size_t next_row_ = 0;

  // Optional bitmap row filter: group sync offset -> sorted row ordinals.
  std::optional<std::vector<std::pair<uint64_t, std::vector<uint64_t>>>>
      row_filter_;
  size_t filter_pos_ = 0;
  std::vector<uint64_t> current_filter_rows_;
  size_t filter_row_pos_ = 0;
};

}  // namespace dgf::table

#endif  // DGF_TABLE_RC_FORMAT_H_
