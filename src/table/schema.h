#ifndef DGF_TABLE_SCHEMA_H_
#define DGF_TABLE_SCHEMA_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "table/value.h"

namespace dgf::table {

/// Case-insensitive column-name equality (HiveQL identifier semantics).
/// All column-name comparisons in the library must go through this.
bool ColumnNameEquals(std::string_view a, std::string_view b);

/// One column of a table schema.
struct Field {
  std::string name;
  DataType type;
};

/// Ordered list of named, typed columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  int num_fields() const { return static_cast<int>(fields_.size()); }
  const Field& field(int i) const { return fields_[static_cast<size_t>(i)]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the column named `name`, or NotFound.
  Result<int> FieldIndex(const std::string& name) const;

  /// Like FieldIndex but aborts on missing columns; for trusted call sites.
  int FieldIndexOrDie(const std::string& name) const;

  bool HasField(const std::string& name) const;

  std::string ToString() const;

 private:
  std::vector<Field> fields_;
};

/// A row is a flat vector of values, positionally matching a Schema.
using Row = std::vector<Value>;

/// Serializes `row` as one text line (fields joined by '|', no newline).
/// '|' follows the TPC-H convention and never occurs inside generated data.
std::string FormatRowText(const Row& row);

/// Parses a text line into a row following `schema`.
Result<Row> ParseRowText(std::string_view line, const Schema& schema);

/// Hot-loop variant of ParseRowText: parses into `*row` in place, reusing its
/// capacity and the caller-owned `*scratch` field vector, so a scan allocates
/// per distinct string value rather than per row.
Status ParseRowTextInto(std::string_view line, const Schema& schema, Row* row,
                        std::vector<std::string_view>* scratch);

}  // namespace dgf::table

#endif  // DGF_TABLE_SCHEMA_H_
