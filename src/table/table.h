#ifndef DGF_TABLE_TABLE_H_
#define DGF_TABLE_TABLE_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "fs/mini_dfs.h"
#include "fs/split.h"
#include "table/record_reader.h"
#include "table/schema.h"

namespace dgf::table {

/// Storage format of a table's data files.
enum class FileFormat { kText, kRcFile };

const char* FileFormatName(FileFormat format);

/// Descriptor of one table: schema plus the DFS directory holding its data
/// files ("data-*" under `dir`).
struct TableDesc {
  std::string name;
  Schema schema;
  FileFormat format = FileFormat::kText;
  std::string dir;

  /// Path of the i-th data file.
  std::string DataFilePath(int file_index) const;
};

/// Registry of tables, the analogue of the Hive metastore.
class Catalog {
 public:
  explicit Catalog(std::shared_ptr<fs::MiniDfs> dfs) : dfs_(std::move(dfs)) {}

  Status CreateTable(TableDesc desc);
  Result<TableDesc> GetTable(const std::string& name) const;
  Status DropTable(const std::string& name);
  std::vector<std::string> ListTables() const;

  const std::shared_ptr<fs::MiniDfs>& dfs() const { return dfs_; }

 private:
  std::shared_ptr<fs::MiniDfs> dfs_;
  mutable std::mutex mu_;
  std::map<std::string, TableDesc> tables_;
};

/// Appends rows to a table, rotating data files at `max_file_bytes` so tables
/// span multiple files (and therefore multiple splits) like real warehouses.
class TableWriter {
 public:
  struct Options {
    uint64_t max_file_bytes = 512ULL << 20;
    int rc_rows_per_group = 4096;
    /// First data file index; appends after existing files use their count.
    int first_file_index = 0;
  };

  static Result<std::unique_ptr<TableWriter>> Create(
      std::shared_ptr<fs::MiniDfs> dfs, const TableDesc& desc, Options options);
  static Result<std::unique_ptr<TableWriter>> Create(
      std::shared_ptr<fs::MiniDfs> dfs, const TableDesc& desc) {
    return Create(std::move(dfs), desc, Options());
  }

  /// Out-of-line: the writer members are forward-declared here.
  ~TableWriter();

  Status Append(const Row& row);
  Status Close();

  uint64_t rows_written() const { return rows_written_; }

 private:
  TableWriter(std::shared_ptr<fs::MiniDfs> dfs, TableDesc desc,
              Options options);

  Status EnsureOpen();
  Status RotateIfNeeded();
  Status CloseCurrent();
  uint64_t CurrentOffset() const;

  std::shared_ptr<fs::MiniDfs> dfs_;
  TableDesc desc_;
  Options options_;
  int next_file_index_ = 0;
  uint64_t rows_written_ = 0;
  // Exactly one of these is open depending on desc_.format.
  std::unique_ptr<class TextFileWriter> text_;
  std::unique_ptr<class RcFileWriter> rc_;
};

/// Opens the right RecordReader for `split` given the table's format.
/// `projection` (column indices) is honoured by the RCFile reader and ignored
/// by the text reader, mirroring Hive.
Result<std::unique_ptr<RecordReader>> OpenSplitReader(
    std::shared_ptr<fs::MiniDfs> dfs, const TableDesc& desc,
    const fs::FileSplit& split,
    std::optional<std::vector<int>> projection = std::nullopt);

/// Lists the data-file splits of a table.
Result<std::vector<fs::FileSplit>> GetTableSplits(
    const std::shared_ptr<fs::MiniDfs>& dfs, const TableDesc& desc,
    uint64_t split_size = 0);

/// Total bytes of a table's data files.
Result<uint64_t> TableDataBytes(const std::shared_ptr<fs::MiniDfs>& dfs,
                                const TableDesc& desc);

}  // namespace dgf::table

#endif  // DGF_TABLE_TABLE_H_
