#ifndef DGF_TABLE_VALUE_H_
#define DGF_TABLE_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "common/result.h"

namespace dgf::table {

/// Column types supported by the mini warehouse.
///
/// kDate is stored as days since 1970-01-01 (the meter-data time stamp
/// dimension); it parses from / formats to "YYYY-MM-DD".
enum class DataType { kInt64, kDouble, kString, kDate };

const char* DataTypeName(DataType type);

/// A dynamically-typed cell value.
///
/// Values are ordered within one type; comparing across numeric types
/// (int64/double/date) coerces to double. Comparison with kString across
/// types is invalid and asserts.
class Value {
 public:
  Value() : data_(int64_t{0}) {}
  static Value Int64(int64_t v) { return Value(v); }
  static Value Double(double v) { return Value(v); }
  static Value String(std::string v) { return Value(std::move(v)); }
  /// `days` since the epoch.
  static Value Date(int64_t days);

  bool is_int64() const { return std::holds_alternative<int64_t>(data_) && !is_date_; }
  bool is_date() const { return is_date_; }
  bool is_double() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  bool is_numeric() const { return !is_string(); }

  int64_t int64() const { return std::get<int64_t>(data_); }
  double dbl() const { return std::get<double>(data_); }
  const std::string& str() const { return std::get<std::string>(data_); }

  /// Numeric view of an int64/double/date value.
  double AsDouble() const;

  /// Renders the value in the table text format (dates as YYYY-MM-DD).
  std::string ToText() const;

  /// Three-way comparison; see class comment for cross-type rules.
  int Compare(const Value& other) const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.Compare(b) == 0;
  }
  friend bool operator<(const Value& a, const Value& b) {
    return a.Compare(b) < 0;
  }
  friend bool operator<=(const Value& a, const Value& b) {
    return a.Compare(b) <= 0;
  }
  friend bool operator>(const Value& a, const Value& b) {
    return a.Compare(b) > 0;
  }
  friend bool operator>=(const Value& a, const Value& b) {
    return a.Compare(b) >= 0;
  }

 private:
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}

  std::variant<int64_t, double, std::string> data_;
  bool is_date_ = false;
};

/// Parses `text` as a value of `type`. Dates accept "YYYY-MM-DD" or a raw
/// integer day count.
Result<Value> ParseValue(std::string_view text, DataType type);

/// Days since epoch -> "YYYY-MM-DD" (proleptic Gregorian).
std::string FormatDate(int64_t days);
/// "YYYY-MM-DD" -> days since epoch.
Result<int64_t> ParseDate(std::string_view text);
/// (year, month, day) -> days since epoch.
int64_t DaysFromCivil(int year, int month, int day);

}  // namespace dgf::table

#endif  // DGF_TABLE_VALUE_H_
