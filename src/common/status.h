#ifndef DGF_COMMON_STATUS_H_
#define DGF_COMMON_STATUS_H_

#include <cstdint>
#include <string>
#include <utility>

namespace dgf {

/// Error categories used across the library. Mirrors the RocksDB/Arrow
/// convention of returning rich status objects instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kIOError,
  kCorruption,
  kNotSupported,
  kOutOfRange,
  kInternal,
  /// The operation was cancelled by an explicit request (client CANCEL or a
  /// local CancelToken).
  kCancelled,
  /// The operation ran past its deadline and was aborted.
  kDeadlineExceeded,
  /// Structured backpressure: the service refused to admit the operation
  /// (queue full, draining for shutdown). The caller may retry later.
  kUnavailable,
};

/// Outcome of an operation: either OK or an error code plus message.
///
/// Library functions that can fail return `Status` (or `Result<T>` when they
/// also produce a value). `Status` is cheap to copy in the OK case.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  /// Rebuilds a status from a decoded (code, message) pair — the receiving
  /// end of the wire protocol.
  static Status FromCode(StatusCode code, std::string msg) {
    if (code == StatusCode::kOk) return Status();
    return Status(code, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "IOError: disk full".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Returns a short name for `code`, e.g. "NotFound".
const char* StatusCodeName(StatusCode code);

/// Stable wire error codes for the query service protocol. This is the ONE
/// table mapping StatusCode to on-the-wire numbers; values are part of the
/// protocol contract and must never be renumbered — append only. Clients use
/// them to distinguish admission rejection (kUnavailable, retryable) from
/// cancellation (kCancelled / kDeadlineExceeded) from execution errors.
/// ServerTest.StatusWireCodesRoundTrip asserts round-trip fidelity.
enum class WireErrorCode : uint16_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kIOError = 4,
  kCorruption = 5,
  kNotSupported = 6,
  kOutOfRange = 7,
  kInternal = 8,
  kCancelled = 9,
  kDeadlineExceeded = 10,
  kUnavailable = 11,
};

/// StatusCode -> wire code (total function).
WireErrorCode StatusCodeToWire(StatusCode code);
/// Wire code -> StatusCode; unknown numbers (a newer peer) map to kInternal
/// rather than failing, so old clients degrade gracefully.
StatusCode StatusCodeFromWire(uint16_t wire);

}  // namespace dgf

/// Propagates an error status from the current function.
#define DGF_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::dgf::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                   \
  } while (0)

/// Evaluates a Result<T> expression and assigns the value, or propagates
/// the error. `lhs` must be a declaration, e.g.
///   DGF_ASSIGN_OR_RETURN(auto file, fs->Open(path));
#define DGF_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  DGF_ASSIGN_OR_RETURN_IMPL_(DGF_CONCAT_(_dgf_res, __LINE__), lhs, rexpr)

#define DGF_CONCAT_INNER_(a, b) a##b
#define DGF_CONCAT_(a, b) DGF_CONCAT_INNER_(a, b)

#define DGF_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                               \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#endif  // DGF_COMMON_STATUS_H_
