#ifndef DGF_COMMON_STOPWATCH_H_
#define DGF_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace dgf {

/// Wall-clock stopwatch used by the benchmark harness and the MiniMR engine.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dgf

#endif  // DGF_COMMON_STOPWATCH_H_
