#include "common/status.h"

namespace dgf {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

WireErrorCode StatusCodeToWire(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return WireErrorCode::kOk;
    case StatusCode::kInvalidArgument:
      return WireErrorCode::kInvalidArgument;
    case StatusCode::kNotFound:
      return WireErrorCode::kNotFound;
    case StatusCode::kAlreadyExists:
      return WireErrorCode::kAlreadyExists;
    case StatusCode::kIOError:
      return WireErrorCode::kIOError;
    case StatusCode::kCorruption:
      return WireErrorCode::kCorruption;
    case StatusCode::kNotSupported:
      return WireErrorCode::kNotSupported;
    case StatusCode::kOutOfRange:
      return WireErrorCode::kOutOfRange;
    case StatusCode::kInternal:
      return WireErrorCode::kInternal;
    case StatusCode::kCancelled:
      return WireErrorCode::kCancelled;
    case StatusCode::kDeadlineExceeded:
      return WireErrorCode::kDeadlineExceeded;
    case StatusCode::kUnavailable:
      return WireErrorCode::kUnavailable;
  }
  return WireErrorCode::kInternal;
}

StatusCode StatusCodeFromWire(uint16_t wire) {
  switch (static_cast<WireErrorCode>(wire)) {
    case WireErrorCode::kOk:
      return StatusCode::kOk;
    case WireErrorCode::kInvalidArgument:
      return StatusCode::kInvalidArgument;
    case WireErrorCode::kNotFound:
      return StatusCode::kNotFound;
    case WireErrorCode::kAlreadyExists:
      return StatusCode::kAlreadyExists;
    case WireErrorCode::kIOError:
      return StatusCode::kIOError;
    case WireErrorCode::kCorruption:
      return StatusCode::kCorruption;
    case WireErrorCode::kNotSupported:
      return StatusCode::kNotSupported;
    case WireErrorCode::kOutOfRange:
      return StatusCode::kOutOfRange;
    case WireErrorCode::kInternal:
      return StatusCode::kInternal;
    case WireErrorCode::kCancelled:
      return StatusCode::kCancelled;
    case WireErrorCode::kDeadlineExceeded:
      return StatusCode::kDeadlineExceeded;
    case WireErrorCode::kUnavailable:
      return StatusCode::kUnavailable;
  }
  return StatusCode::kInternal;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace dgf
