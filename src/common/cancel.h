#ifndef DGF_COMMON_CANCEL_H_
#define DGF_COMMON_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "common/status.h"

namespace dgf {

/// Cooperative cancellation token with an optional deadline.
///
/// One token is attached to one unit of cancellable work (a query). The
/// worker polls `Check()` inside its hot loops (amortized — see
/// `CheckEvery`); any thread may call `Cancel()` at any time. Tokens are
/// shared between the requesting side and the worker via shared_ptr, so a
/// CANCEL arriving after the query finished is a harmless no-op on a dying
/// token.
///
/// The deadline is a steady-clock point set once before the work starts;
/// `Check()` reports `DeadlineExceeded` the first time it is polled past it.
/// Cancellation wins over the deadline when both apply (the client asked
/// first; the distinction matters to wire error codes).
class CancelToken {
 public:
  CancelToken() = default;

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation; visible to the next `Check()` on any thread.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }

  /// Arms the deadline `budget_seconds` from now (<= 0 disarms).
  void SetDeadlineAfter(double budget_seconds) {
    if (budget_seconds <= 0) {
      deadline_ns_.store(0, std::memory_order_release);
      return;
    }
    const int64_t now = NowNanos();
    deadline_ns_.store(
        now + static_cast<int64_t>(budget_seconds * 1e9),
        std::memory_order_release);
  }

  bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }

  /// OK while the work may continue; `Cancelled` after `Cancel()`;
  /// `DeadlineExceeded` past the armed deadline.
  Status Check() const {
    if (cancelled()) return Status::Cancelled("query cancelled");
    const int64_t deadline = deadline_ns_.load(std::memory_order_acquire);
    if (deadline != 0 && NowNanos() >= deadline) {
      return Status::DeadlineExceeded("query deadline exceeded");
    }
    return Status::OK();
  }

  /// Amortized poll for hot loops: consults `Check()` (and its clock read)
  /// only every `period` calls, tracked in caller-owned `*counter`. A null
  /// token is free.
  static Status CheckEvery(const CancelToken* token, uint64_t* counter,
                           uint64_t period = 128) {
    if (token == nullptr) return Status::OK();
    if ((++*counter % period) != 0) return Status::OK();
    return token->Check();
  }

 private:
  static int64_t NowNanos() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  std::atomic<bool> cancelled_{false};
  /// Steady-clock nanos; 0 = no deadline.
  std::atomic<int64_t> deadline_ns_{0};
};

}  // namespace dgf

#endif  // DGF_COMMON_CANCEL_H_
