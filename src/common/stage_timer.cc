#include "common/stage_timer.h"

#include "common/string_util.h"

namespace dgf {

StageTimes::StageTimes(const StageTimes& other) { Merge(other); }

StageTimes& StageTimes::operator=(const StageTimes& other) {
  if (this == &other) return *this;
  {
    std::lock_guard<std::mutex> lock(mu_);
    seconds_.clear();
  }
  Merge(other);
  return *this;
}

void StageTimes::Add(std::string_view stage, double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = seconds_.find(stage);
  if (it == seconds_.end()) {
    seconds_.emplace(std::string(stage), seconds);
  } else {
    it->second += seconds;
  }
}

void StageTimes::Merge(const StageTimes& other) {
  for (const auto& [stage, seconds] : other.Sorted()) Add(stage, seconds);
}

double StageTimes::Seconds(std::string_view stage) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = seconds_.find(stage);
  return it == seconds_.end() ? 0.0 : it->second;
}

std::vector<std::pair<std::string, double>> StageTimes::Sorted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {seconds_.begin(), seconds_.end()};
}

std::string StageTimes::ToJson() const {
  std::string out = "{";
  for (const auto& [stage, seconds] : Sorted()) {
    if (out.size() > 1) out += ", ";
    out += StringPrintf("\"%s\": %.6f", stage.c_str(), seconds);
  }
  out += "}";
  return out;
}

bool StageTimes::Empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seconds_.empty();
}

}  // namespace dgf
