#ifndef DGF_COMMON_STAGE_TIMER_H_
#define DGF_COMMON_STAGE_TIMER_H_

#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/stopwatch.h"

namespace dgf {

/// Accumulated wall-clock seconds per named pipeline stage.
///
/// The write path (index build, append reorganization, group-commit flush)
/// is a sequence of stages — shard, merge, slice write, publish — whose
/// relative weights decide whether adding threads can help at all: a stage
/// that runs serially bounds the whole pipeline's speedup (Amdahl). Each
/// pipeline accumulates its per-stage seconds here and surfaces them through
/// JobResult / service stats so benches can emit a breakdown next to the
/// end-to-end wall time.
///
/// Thread-safe: concurrent Add calls from parallel tasks accumulate under an
/// internal mutex (stage boundaries are orders of magnitude rarer than the
/// work inside them, so the lock never shows up in a profile).
class StageTimes {
 public:
  StageTimes() = default;
  StageTimes(const StageTimes& other);
  StageTimes& operator=(const StageTimes& other);

  /// Adds `seconds` to `stage`'s accumulated total.
  void Add(std::string_view stage, double seconds);

  /// Accumulates every stage of `other` into this.
  void Merge(const StageTimes& other);

  /// Accumulated seconds of `stage` (0 when never recorded).
  double Seconds(std::string_view stage) const;

  /// Every (stage, seconds) pair, sorted by stage name.
  std::vector<std::pair<std::string, double>> Sorted() const;

  /// Renders `{"shard": 0.123456, ...}` — the fragment benches embed in
  /// their JSON records. Empty StageTimes render as `{}`.
  std::string ToJson() const;

  bool Empty() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, double, std::less<>> seconds_;
};

/// RAII scope that charges its lifetime to one stage of a StageTimes.
/// With a null target the scope is free aside from reading the clock.
class ScopedStage {
 public:
  ScopedStage(StageTimes* times, std::string_view stage)
      : times_(times), stage_(stage) {}

  ScopedStage(const ScopedStage&) = delete;
  ScopedStage& operator=(const ScopedStage&) = delete;

  ~ScopedStage() { Stop(); }

  /// Ends the scope early; returns the elapsed seconds charged. Subsequent
  /// calls (and the destructor) are no-ops.
  double Stop() {
    if (times_ == nullptr) return 0.0;
    const double seconds = watch_.ElapsedSeconds();
    times_->Add(stage_, seconds);
    times_ = nullptr;
    return seconds;
  }

 private:
  StageTimes* times_;
  std::string stage_;
  Stopwatch watch_;
};

}  // namespace dgf

#endif  // DGF_COMMON_STAGE_TIMER_H_
