#ifndef DGF_COMMON_ENCODING_H_
#define DGF_COMMON_ENCODING_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace dgf {

/// Binary encoding helpers shared by the KV store, file formats, and the
/// order-preserving GFU key encoding.
///
/// Fixed-width integers are big-endian so that lexicographic byte order on
/// encoded keys equals numeric order; varints use the LEB128 scheme.

/// Appends a big-endian 32-bit value to `dst`.
void PutFixed32(std::string* dst, uint32_t value);
/// Appends a big-endian 64-bit value to `dst`.
void PutFixed64(std::string* dst, uint64_t value);

/// Decodes a big-endian 32-bit value from `src` (must have >= 4 bytes).
uint32_t DecodeFixed32(const char* src);
/// Decodes a big-endian 64-bit value from `src` (must have >= 8 bytes).
uint64_t DecodeFixed64(const char* src);

/// Appends an unsigned LEB128 varint.
void PutVarint64(std::string* dst, uint64_t value);

/// Reads a varint from the front of `*input`, advancing it past the varint.
/// Returns Corruption if the input is truncated or over-long.
Result<uint64_t> GetVarint64(std::string_view* input);

/// Appends varint length + raw bytes.
void PutLengthPrefixed(std::string* dst, std::string_view value);

/// Reads a length-prefixed slice from the front of `*input`, advancing it.
Result<std::string_view> GetLengthPrefixed(std::string_view* input);

/// Encodes a signed 64-bit value such that encoded byte order matches signed
/// numeric order (flips the sign bit and stores big-endian). Used for the
/// per-dimension coordinates inside GFU keys.
void PutOrderedInt64(std::string* dst, int64_t value);
/// Inverse of PutOrderedInt64; `src` must have >= 8 bytes.
int64_t DecodeOrderedInt64(const char* src);

/// Encodes a double preserving total order (IEEE-754 trick: flip all bits of
/// negative values, flip only the sign bit of non-negative ones).
void PutOrderedDouble(std::string* dst, double value);
double DecodeOrderedDouble(const char* src);

/// CRC-32 (the IEEE/zlib polynomial, reflected). Incremental: pass the
/// previous return value as `seed` to extend a running checksum across
/// appends; start from 0. Used for the per-replica chunk checksums in
/// MiniDfs replication.
uint32_t Crc32(uint32_t seed, const void* data, size_t size);
inline uint32_t Crc32(uint32_t seed, std::string_view data) {
  return Crc32(seed, data.data(), data.size());
}

}  // namespace dgf

#endif  // DGF_COMMON_ENCODING_H_
