#ifndef DGF_COMMON_STRING_UTIL_H_
#define DGF_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace dgf {

/// Splits `input` on `delim`, keeping empty fields. Never fails.
std::vector<std::string_view> SplitString(std::string_view input, char delim);

/// Like SplitString but reuses `*out` (cleared first) — the hot-loop variant
/// that avoids one vector allocation per call.
void SplitStringInto(std::string_view input, char delim,
                     std::vector<std::string_view>* out);

/// Joins `parts` with `delim`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view delim);

/// Strips ASCII whitespace from both ends.
std::string_view TrimString(std::string_view input);

/// Strict integer parse of the full string (optionally signed decimal).
Result<int64_t> ParseInt64(std::string_view input);

/// Strict floating-point parse of the full string.
Result<double> ParseDouble(std::string_view input);

/// True if `value` starts with `prefix`.
bool StartsWith(std::string_view value, std::string_view prefix);

/// Renders a byte count as a human-readable string, e.g. "3.2 MB".
std::string HumanBytes(uint64_t bytes);

/// Renders `n` with thousands separators, e.g. 1234567 -> "1,234,567".
std::string WithCommas(int64_t n);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace dgf

#endif  // DGF_COMMON_STRING_UTIL_H_
