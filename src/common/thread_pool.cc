#include "common/thread_pool.h"

#include <algorithm>

namespace dgf {

ThreadPool::ThreadPool(int num_threads) {
  num_threads = std::max(1, num_threads);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_ready_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace dgf
