#ifndef DGF_COMMON_THREAD_POOL_H_
#define DGF_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dgf {

/// Fixed-size worker pool used by the MiniMR engine to run map/reduce tasks.
///
/// Tasks are plain `std::function<void()>`. `WaitIdle()` blocks until every
/// submitted task has finished, which is how a MapReduce phase barrier is
/// implemented. The pool is neither copyable nor movable.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Never blocks.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is running.
  void WaitIdle();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int active_ = 0;
  bool stop_ = false;
};

}  // namespace dgf

#endif  // DGF_COMMON_THREAD_POOL_H_
