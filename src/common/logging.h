#ifndef DGF_COMMON_LOGGING_H_
#define DGF_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace dgf {

/// Severity levels for the lightweight logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kFatal = 4 };

/// Process-wide minimum level; messages below it are dropped.
/// Defaults to kInfo; tests lower it to kWarn to keep output quiet.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Collects one log line and emits it (to stderr) on destruction.
/// kFatal aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the level is disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace dgf

#define DGF_LOG_ENABLED(level) \
  (::dgf::LogLevel::level >= ::dgf::GetLogLevel())

#define DGF_LOG(level)                                                \
  if (!DGF_LOG_ENABLED(level)) {                                      \
  } else                                                              \
    ::dgf::internal::LogMessage(::dgf::LogLevel::level, __FILE__, __LINE__) \
        .stream()

/// Checks an invariant in all build types; logs and aborts on failure.
#define DGF_CHECK(cond)                                                      \
  if (cond) {                                                                \
  } else                                                                     \
    ::dgf::internal::LogMessage(::dgf::LogLevel::kFatal, __FILE__, __LINE__) \
            .stream()                                                        \
        << "Check failed: " #cond " "

#define DGF_CHECK_OK(expr)                                   \
  do {                                                       \
    ::dgf::Status _st = (expr);                              \
    DGF_CHECK(_st.ok()) << _st.ToString();                   \
  } while (0)

#endif  // DGF_COMMON_LOGGING_H_
