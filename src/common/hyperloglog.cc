#include "common/hyperloglog.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace dgf {

HyperLogLog::HyperLogLog(int precision) : precision_(precision) {
  assert(precision >= 4 && precision <= 16);
  precision_ = std::clamp(precision, 4, 16);
  registers_.assign(size_t{1} << precision_, 0);
}

uint64_t HyperLogLog::Hash(std::string_view item) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : item) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  // Finalizer: FNV output alone is too regular for the leading-zero test.
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDULL;
  h ^= h >> 33;
  h *= 0xC4CEB9FE1A85EC53ULL;
  h ^= h >> 33;
  return h;
}

void HyperLogLog::AddHash(uint64_t hash) {
  const uint64_t index = hash >> (64 - precision_);
  const uint64_t rest = hash << precision_;
  // Rank = position of the leftmost 1-bit in the remaining bits (1-based).
  const int rank =
      rest == 0 ? (64 - precision_ + 1) : (__builtin_clzll(rest) + 1);
  auto& reg = registers_[static_cast<size_t>(index)];
  reg = std::max<uint8_t>(reg, static_cast<uint8_t>(rank));
}

double HyperLogLog::Estimate() const {
  const double m = static_cast<double>(registers_.size());
  double alpha;
  if (registers_.size() == 16) {
    alpha = 0.673;
  } else if (registers_.size() == 32) {
    alpha = 0.697;
  } else if (registers_.size() == 64) {
    alpha = 0.709;
  } else {
    alpha = 0.7213 / (1.0 + 1.079 / m);
  }
  double sum = 0;
  int zeros = 0;
  for (uint8_t reg : registers_) {
    sum += std::ldexp(1.0, -reg);
    if (reg == 0) ++zeros;
  }
  double estimate = alpha * m * m / sum;
  // Small-range correction (linear counting).
  if (estimate <= 2.5 * m && zeros > 0) {
    estimate = m * std::log(m / static_cast<double>(zeros));
  }
  return estimate;
}

void HyperLogLog::Merge(const HyperLogLog& other) {
  assert(precision_ == other.precision_);
  for (size_t i = 0; i < registers_.size(); ++i) {
    registers_[i] = std::max(registers_[i], other.registers_[i]);
  }
}

}  // namespace dgf
