#ifndef DGF_COMMON_LRU_CACHE_H_
#define DGF_COMMON_LRU_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace dgf {

/// Sharded LRU cache keyed by string, the block-cache analogue for the
/// DGFIndex read path: DgfIndex keeps decoded GfuValues and per-dimension
/// min/max meta cells here so repeated queries skip the KV round trip and the
/// re-decode entirely.
///
/// Sharding bounds lock contention under concurrent lookups (each shard has
/// its own mutex and LRU list); hit/miss counters are process-wide atomics
/// read with relaxed loads. Values are returned by copy — cache
/// shared_ptr<const T> when copies are expensive.
///
/// Entries carry a monotonically increasing epoch (the store version they
/// were decoded at), which replaces blanket Clear() invalidation under
/// concurrency: a reader pinned at epoch E ignores entries newer than E
/// without evicting them (a newer reader still wants those), and evicts
/// entries older than E on contact (the store is past them forever, so they
/// can never be valid again). Writers never publish over a newer entry.
/// Epoch-less Get/Put overloads treat everything as epoch 0 for callers that
/// still rely on Clear().
template <typename V>
class ShardedLruCache {
 public:
  /// `capacity` is the total entry budget, split evenly across `num_shards`
  /// (each shard holds at least one entry).
  explicit ShardedLruCache(size_t capacity = 16384, size_t num_shards = 8)
      : shards_(num_shards == 0 ? 1 : num_shards) {
    const size_t per_shard = capacity / shards_.size();
    for (auto& shard : shards_) shard.capacity = per_shard > 0 ? per_shard : 1;
  }

  /// Returns a copy of the value cached for `key` at exactly `epoch` and
  /// promotes the entry, or nullopt. An entry tagged older than `epoch` is
  /// erased (epochs only grow, so it is permanently stale); an entry tagged
  /// newer is left alone for readers pinned at that later epoch.
  std::optional<V> Get(std::string_view key, uint64_t epoch) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    if (it->second->epoch != epoch) {
      if (it->second->epoch < epoch) {
        shard.lru.erase(it->second);
        shard.map.erase(it);
      }
      misses_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second->value;
  }

  /// Epoch-less lookup (legacy callers): equivalent to Get(key, 0).
  std::optional<V> Get(std::string_view key) { return Get(key, 0); }

  /// Inserts or overwrites `key` with a value decoded at `epoch`, evicting
  /// the least-recently-used entries of the shard beyond its capacity. A
  /// publish against an entry already tagged with a newer epoch is dropped:
  /// a slow reader must never roll the cache backwards for everyone else.
  void Put(std::string_view key, uint64_t epoch, V value) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      if (it->second->epoch > epoch) return;
      it->second->value = std::move(value);
      it->second->epoch = epoch;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
    shard.lru.push_front(Entry{std::string(key), std::move(value), epoch});
    shard.map.emplace(std::string_view(shard.lru.front().key),
                      shard.lru.begin());
    while (shard.lru.size() > shard.capacity) {
      shard.map.erase(std::string_view(shard.lru.back().key));
      shard.lru.pop_back();
    }
  }

  /// Epoch-less insert (legacy callers): equivalent to Put(key, 0, value).
  void Put(std::string_view key, V value) { Put(key, 0, std::move(value)); }

  void Erase(std::string_view key) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) return;
    shard.lru.erase(it->second);
    shard.map.erase(it);
  }

  /// Drops every entry. With epoch tags this is only a memory-hygiene hook
  /// (stale epochs age out on contact); epoch-less callers still use it as
  /// their invalidation barrier.
  void Clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.map.clear();
      shard.lru.clear();
    }
  }

  size_t size() const {
    size_t total = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      total += shard.lru.size();
    }
    return total;
  }

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  struct Entry {
    std::string key;
    V value;
    uint64_t epoch = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    size_t capacity = 1;
    // Front = most recently used. The map's string_view keys point into the
    // list entries, which are address-stable across splices.
    std::list<Entry> lru;
    std::unordered_map<std::string_view, typename std::list<Entry>::iterator>
        map;
  };

  Shard& ShardFor(std::string_view key) {
    return shards_[std::hash<std::string_view>{}(key) % shards_.size()];
  }

  std::vector<Shard> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace dgf

#endif  // DGF_COMMON_LRU_CACHE_H_
