#ifndef DGF_COMMON_LRU_CACHE_H_
#define DGF_COMMON_LRU_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace dgf {

/// Sharded LRU cache keyed by string, the block-cache analogue for the
/// DGFIndex read path: DgfIndex keeps decoded GfuValues and per-dimension
/// min/max meta cells here so repeated queries skip the KV round trip and the
/// re-decode entirely.
///
/// Sharding bounds lock contention under concurrent lookups (each shard has
/// its own mutex and LRU list); hit/miss counters are process-wide atomics.
/// Values are returned by copy — cache shared_ptr<const T> when copies are
/// expensive.
template <typename V>
class ShardedLruCache {
 public:
  /// `capacity` is the total entry budget, split evenly across `num_shards`
  /// (each shard holds at least one entry).
  explicit ShardedLruCache(size_t capacity = 16384, size_t num_shards = 8)
      : shards_(num_shards == 0 ? 1 : num_shards) {
    const size_t per_shard = capacity / shards_.size();
    for (auto& shard : shards_) shard.capacity = per_shard > 0 ? per_shard : 1;
  }

  /// Returns a copy of the cached value and promotes the entry, or nullopt.
  std::optional<V> Get(std::string_view key) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second->value;
  }

  /// Inserts or overwrites `key`, evicting the least-recently-used entries of
  /// the shard beyond its capacity.
  void Put(std::string_view key, V value) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      it->second->value = std::move(value);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
    shard.lru.push_front(Entry{std::string(key), std::move(value)});
    shard.map.emplace(std::string_view(shard.lru.front().key),
                      shard.lru.begin());
    while (shard.lru.size() > shard.capacity) {
      shard.map.erase(std::string_view(shard.lru.back().key));
      shard.lru.pop_back();
    }
  }

  void Erase(std::string_view key) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) return;
    shard.lru.erase(it->second);
    shard.map.erase(it);
  }

  /// Drops every entry (the invalidation hook for index mutations).
  void Clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.map.clear();
      shard.lru.clear();
    }
  }

  size_t size() const {
    size_t total = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      total += shard.lru.size();
    }
    return total;
  }

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  struct Entry {
    std::string key;
    V value;
  };
  struct Shard {
    mutable std::mutex mu;
    size_t capacity = 1;
    // Front = most recently used. The map's string_view keys point into the
    // list entries, which are address-stable across splices.
    std::list<Entry> lru;
    std::unordered_map<std::string_view, typename std::list<Entry>::iterator>
        map;
  };

  Shard& ShardFor(std::string_view key) {
    return shards_[std::hash<std::string_view>{}(key) % shards_.size()];
  }

  std::vector<Shard> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace dgf

#endif  // DGF_COMMON_LRU_CACHE_H_
