#ifndef DGF_COMMON_RESULT_H_
#define DGF_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace dgf {

/// A value-or-error holder, the value-producing counterpart of `Status`.
///
/// A `Result<T>` is either OK and holds a `T`, or holds a non-OK `Status`.
/// Accessing `value()` on an error result aborts in debug builds, so callers
/// must check `ok()` (or use DGF_ASSIGN_OR_RETURN).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value makes `return value;` work.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status makes
  /// `return Status::NotFound(...);` work. Must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
    if (status_.ok()) status_ = Status::Internal("Result from OK status");
  }

  bool ok() const { return value_.has_value(); }

  /// The error status; OK when a value is present.
  const Status& status() const& { return status_; }
  Status status() && { return std::move(status_); }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` if this holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace dgf

#endif  // DGF_COMMON_RESULT_H_
