#include "common/encoding.h"

#include <cstring>

namespace dgf {

void PutFixed32(std::string* dst, uint32_t value) {
  char buf[4];
  buf[0] = static_cast<char>(value >> 24);
  buf[1] = static_cast<char>(value >> 16);
  buf[2] = static_cast<char>(value >> 8);
  buf[3] = static_cast<char>(value);
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t value) {
  PutFixed32(dst, static_cast<uint32_t>(value >> 32));
  PutFixed32(dst, static_cast<uint32_t>(value));
}

uint32_t DecodeFixed32(const char* src) {
  const auto* p = reinterpret_cast<const unsigned char*>(src);
  return (static_cast<uint32_t>(p[0]) << 24) |
         (static_cast<uint32_t>(p[1]) << 16) |
         (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
}

uint64_t DecodeFixed64(const char* src) {
  return (static_cast<uint64_t>(DecodeFixed32(src)) << 32) |
         DecodeFixed32(src + 4);
}

void PutVarint64(std::string* dst, uint64_t value) {
  while (value >= 0x80) {
    dst->push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  dst->push_back(static_cast<char>(value));
}

Result<uint64_t> GetVarint64(std::string_view* input) {
  uint64_t value = 0;
  for (int shift = 0; shift <= 63; shift += 7) {
    if (input->empty()) return Status::Corruption("truncated varint");
    auto byte = static_cast<unsigned char>(input->front());
    input->remove_prefix(1);
    value |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return value;
  }
  return Status::Corruption("over-long varint");
}

void PutLengthPrefixed(std::string* dst, std::string_view value) {
  PutVarint64(dst, value.size());
  dst->append(value.data(), value.size());
}

Result<std::string_view> GetLengthPrefixed(std::string_view* input) {
  DGF_ASSIGN_OR_RETURN(uint64_t len, GetVarint64(input));
  if (input->size() < len) return Status::Corruption("truncated slice");
  std::string_view out = input->substr(0, len);
  input->remove_prefix(len);
  return out;
}

void PutOrderedInt64(std::string* dst, int64_t value) {
  // Flipping the sign bit maps the signed range onto the unsigned range while
  // preserving order; big-endian bytes then compare lexicographically.
  PutFixed64(dst, static_cast<uint64_t>(value) ^ (1ULL << 63));
}

int64_t DecodeOrderedInt64(const char* src) {
  return static_cast<int64_t>(DecodeFixed64(src) ^ (1ULL << 63));
}

void PutOrderedDouble(std::string* dst, double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  if (bits & (1ULL << 63)) {
    bits = ~bits;  // negative: reverse order of magnitudes
  } else {
    bits |= (1ULL << 63);  // non-negative: sort after all negatives
  }
  PutFixed64(dst, bits);
}

double DecodeOrderedDouble(const char* src) {
  uint64_t bits = DecodeFixed64(src);
  if (bits & (1ULL << 63)) {
    bits &= ~(1ULL << 63);
  } else {
    bits = ~bits;
  }
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

namespace {

struct Crc32Table {
  uint32_t entries[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0xEDB88320u : 0);
      }
      entries[i] = crc;
    }
  }
};

}  // namespace

uint32_t Crc32(uint32_t seed, const void* data, size_t size) {
  static const Crc32Table table;
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = table.entries[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace dgf
