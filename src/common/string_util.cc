#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace dgf {

std::vector<std::string_view> SplitString(std::string_view input, char delim) {
  std::vector<std::string_view> out;
  SplitStringInto(input, delim, &out);
  return out;
}

void SplitStringInto(std::string_view input, char delim,
                     std::vector<std::string_view>* out) {
  out->clear();
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delim, start);
    if (pos == std::string_view::npos) {
      out->push_back(input.substr(start));
      return;
    }
    out->push_back(input.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view delim) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(delim);
    out.append(parts[i]);
  }
  return out;
}

std::string_view TrimString(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

Result<int64_t> ParseInt64(std::string_view input) {
  if (input.empty()) return Status::InvalidArgument("empty integer");
  std::string buf(input);
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) return Status::OutOfRange("integer overflow: " + buf);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not an integer: " + buf);
  }
  return static_cast<int64_t>(value);
}

Result<double> ParseDouble(std::string_view input) {
  if (input.empty()) return Status::InvalidArgument("empty double");
  std::string buf(input);
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not a double: " + buf);
  }
  return value;
}

bool StartsWith(std::string_view value, std::string_view prefix) {
  return value.size() >= prefix.size() &&
         value.compare(0, prefix.size(), prefix) == 0;
}

std::string HumanBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", value, kUnits[unit]);
  }
  return buf;
}

std::string WithCommas(int64_t n) {
  const bool negative = n < 0;
  std::string digits = std::to_string(negative ? -n : n);
  std::string out;
  const size_t len = digits.size();
  for (size_t i = 0; i < len; ++i) {
    if (i > 0 && (len - i) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return negative ? "-" + out : out;
}

std::string StringPrintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace dgf
