#ifndef DGF_COMMON_HYPERLOGLOG_H_
#define DGF_COMMON_HYPERLOGLOG_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace dgf {

/// HyperLogLog distinct-value sketch (Flajolet et al. 2007).
///
/// Used by table statistics to estimate per-column cardinalities in one scan
/// with O(2^precision) memory; the splitting-policy advisor consumes the
/// estimates. Standard error is ~1.04/sqrt(2^precision) (~1.6% at the
/// default precision 12, 4 KiB per sketch).
class HyperLogLog {
 public:
  /// `precision` in [4, 16]: the sketch uses 2^precision 1-byte registers.
  explicit HyperLogLog(int precision = 12);

  /// Folds one item (pre-hashed values should use AddHash directly).
  void Add(std::string_view item) { AddHash(Hash(item)); }
  void AddHash(uint64_t hash);

  /// Cardinality estimate with small-range correction.
  double Estimate() const;

  /// Merges another sketch of the same precision (register-wise max).
  void Merge(const HyperLogLog& other);

  int precision() const { return precision_; }

  /// 64-bit FNV-1a, the hash Add() applies.
  static uint64_t Hash(std::string_view item);

 private:
  int precision_;
  std::vector<uint8_t> registers_;
};

}  // namespace dgf

#endif  // DGF_COMMON_HYPERLOGLOG_H_
