#ifndef DGF_COMMON_RANDOM_H_
#define DGF_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace dgf {

/// Deterministic PRNG (xorshift128+) used by all workload generators, so that
/// every dataset and test is reproducible from an explicit seed.
class Random {
 public:
  explicit Random(uint64_t seed) {
    // SplitMix64 seeding avoids poor low-entropy seeds.
    uint64_t z = seed + 0x9E3779B97F4A7C15ULL;
    for (uint64_t* s : {&s0_, &s1_}) {
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      *s = z ^ (z >> 31);
      z += 0x9E3779B97F4A7C15ULL;
    }
    if (s0_ == 0 && s1_ == 0) s0_ = 1;
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

 private:
  uint64_t s0_ = 0;
  uint64_t s1_ = 0;
};

/// Zipf-distributed generator over [0, n) with skew `theta` in (0, 1).
/// Used for optional region skew in the meter-data generator.
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, uint64_t seed);

  uint64_t Next();

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  Random rng_;
};

}  // namespace dgf

#endif  // DGF_COMMON_RANDOM_H_
