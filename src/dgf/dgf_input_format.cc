#include "dgf/dgf_input_format.h"

#include <algorithm>
#include <map>

#include "table/rc_format.h"
#include "table/text_format.h"

namespace dgf::core {

Result<std::vector<SlicedSplit>> PlanSlicedSplits(
    const std::shared_ptr<fs::MiniDfs>& dfs,
    const std::vector<SliceLocation>& slices, uint64_t split_size) {
  // Group slices by file, sorted by start offset. Zero-length slices carry no
  // records and are dropped.
  std::map<std::string, std::vector<SliceLocation>> by_file;
  for (const SliceLocation& slice : slices) {
    if (slice.length() == 0) continue;
    by_file[slice.file].push_back(slice);
  }
  std::vector<SlicedSplit> out;
  for (auto& [file, file_slices] : by_file) {
    std::sort(file_slices.begin(), file_slices.end(),
              [](const SliceLocation& a, const SliceLocation& b) {
                return a.start < b.start;
              });
    // Coalesce adjacent slices: after placement optimization the slices of a
    // query box are contiguous, collapsing to a handful of long reads.
    size_t write_pos = 0;
    for (size_t i = 1; i < file_slices.size(); ++i) {
      if (file_slices[i].start <= file_slices[write_pos].end) {
        file_slices[write_pos].end =
            std::max(file_slices[write_pos].end, file_slices[i].end);
      } else {
        file_slices[++write_pos] = file_slices[i];
      }
    }
    file_slices.resize(write_pos + 1);
    DGF_ASSIGN_OR_RETURN(auto splits, dfs->GetSplits(file, split_size));
    size_t cursor = 0;
    for (const fs::FileSplit& split : splits) {
      SlicedSplit sliced;
      sliced.split = split;
      while (cursor < file_slices.size() &&
             file_slices[cursor].start < split.end()) {
        sliced.slices.push_back(file_slices[cursor]);
        ++cursor;
      }
      if (!sliced.slices.empty()) out.push_back(std::move(sliced));
      if (cursor >= file_slices.size()) break;
    }
  }
  return out;
}

Result<std::unique_ptr<table::RecordReader>> OpenSliceReader(
    const std::shared_ptr<fs::MiniDfs>& dfs, const SliceLocation& slice,
    const table::Schema& schema, table::FileFormat format) {
  fs::FileSplit range{slice.file, slice.start, slice.length()};
  if (format == table::FileFormat::kText) {
    DGF_ASSIGN_OR_RETURN(auto reader,
                         table::TextSplitReader::OpenExactRange(dfs, range,
                                                                schema));
    return std::unique_ptr<table::RecordReader>(std::move(reader));
  }
  // RCFile Slices are whole row groups: the first sync sits exactly at the
  // Slice start and no group straddles the end, so plain split semantics
  // read exactly the Slice.
  DGF_ASSIGN_OR_RETURN(auto reader,
                       table::RcSplitReader::Open(dfs, range, schema));
  return std::unique_ptr<table::RecordReader>(std::move(reader));
}

Result<std::unique_ptr<SliceRecordReader>> SliceRecordReader::Open(
    std::shared_ptr<fs::MiniDfs> dfs, const SlicedSplit& sliced,
    table::Schema schema, table::FileFormat format) {
  return std::unique_ptr<SliceRecordReader>(new SliceRecordReader(
      std::move(dfs), sliced, std::move(schema), format));
}

Status SliceRecordReader::AdvanceSlice() {
  if (current_ != nullptr) {
    finished_bytes_ += current_->BytesRead();
    current_.reset();
  }
  if (next_slice_ >= sliced_.slices.size()) return Status::OK();
  const SliceLocation& slice = sliced_.slices[next_slice_++];
  DGF_ASSIGN_OR_RETURN(current_,
                       OpenSliceReader(dfs_, slice, schema_, format_));
  ++seeks_;
  return Status::OK();
}

Result<bool> SliceRecordReader::Next(table::Row* row) {
  for (;;) {
    if (current_ == nullptr) {
      DGF_RETURN_IF_ERROR(AdvanceSlice());
      if (current_ == nullptr) return false;
    }
    DGF_ASSIGN_OR_RETURN(bool more, current_->Next(row));
    if (more) return true;
    finished_bytes_ += current_->BytesRead();
    current_.reset();
  }
}

uint64_t SliceRecordReader::CurrentBlockOffset() const {
  return current_ != nullptr ? current_->CurrentBlockOffset() : 0;
}

uint64_t SliceRecordReader::BytesRead() const {
  return finished_bytes_ + (current_ != nullptr ? current_->BytesRead() : 0);
}

}  // namespace dgf::core
