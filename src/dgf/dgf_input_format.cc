#include "dgf/dgf_input_format.h"

#include <algorithm>
#include <map>

#include "table/rc_format.h"
#include "table/text_format.h"

namespace dgf::core {

std::vector<SliceLocation> CoalesceSlices(std::vector<SliceLocation> slices) {
  // Group by file, sorted by start offset. Zero-length slices carry no
  // records and are dropped.
  std::map<std::string, std::vector<SliceLocation>> by_file;
  for (SliceLocation& slice : slices) {
    if (slice.length() == 0) continue;
    by_file[slice.file].push_back(std::move(slice));
  }
  std::vector<SliceLocation> out;
  out.reserve(slices.size());
  for (auto& [file, file_slices] : by_file) {
    std::sort(file_slices.begin(), file_slices.end(),
              [](const SliceLocation& a, const SliceLocation& b) {
                return a.start < b.start;
              });
    size_t write_pos = 0;
    for (size_t i = 1; i < file_slices.size(); ++i) {
      if (file_slices[i].start <= file_slices[write_pos].end) {
        file_slices[write_pos].end =
            std::max(file_slices[write_pos].end, file_slices[i].end);
      } else {
        ++write_pos;
        if (write_pos != i) file_slices[write_pos] = std::move(file_slices[i]);
      }
    }
    file_slices.resize(write_pos + 1);
    out.insert(out.end(), std::make_move_iterator(file_slices.begin()),
               std::make_move_iterator(file_slices.end()));
  }
  return out;
}

Result<std::vector<SlicedSplit>> PlanSlicedSplits(
    const std::shared_ptr<fs::MiniDfs>& dfs,
    const std::vector<SliceLocation>& slices, uint64_t split_size) {
  std::map<std::string, std::vector<SliceLocation>> by_file;
  for (SliceLocation& slice : CoalesceSlices(slices)) {
    by_file[slice.file].push_back(std::move(slice));
  }
  std::vector<SlicedSplit> out;
  for (auto& [file, file_slices] : by_file) {
    DGF_ASSIGN_OR_RETURN(auto splits, dfs->GetSplits(file, split_size));
    size_t cursor = 0;
    for (const fs::FileSplit& split : splits) {
      SlicedSplit sliced;
      sliced.split = split;
      while (cursor < file_slices.size() &&
             file_slices[cursor].start < split.end()) {
        sliced.slices.push_back(file_slices[cursor]);
        ++cursor;
      }
      if (!sliced.slices.empty()) out.push_back(std::move(sliced));
      if (cursor >= file_slices.size()) break;
    }
  }
  return out;
}

Result<std::unique_ptr<table::RecordReader>> OpenSliceReader(
    const std::shared_ptr<fs::MiniDfs>& dfs, const SliceLocation& slice,
    const table::Schema& schema, table::FileFormat format) {
  fs::FileSplit range{slice.file, slice.start, slice.length()};
  if (format == table::FileFormat::kText) {
    DGF_ASSIGN_OR_RETURN(auto reader,
                         table::TextSplitReader::OpenExactRange(dfs, range,
                                                                schema));
    return std::unique_ptr<table::RecordReader>(std::move(reader));
  }
  // RCFile Slices are whole row groups: the first sync sits exactly at the
  // Slice start and no group straddles the end, so plain split semantics
  // read exactly the Slice.
  DGF_ASSIGN_OR_RETURN(auto reader,
                       table::RcSplitReader::Open(dfs, range, schema));
  return std::unique_ptr<table::RecordReader>(std::move(reader));
}

namespace {

// Merged-range reading: chunk size per Pread, and the largest inter-part gap
// that is cheaper to read through than to reopen past.
constexpr uint64_t kMergedReadChunk = 1024 * 1024;
constexpr uint64_t kGapReadThrough = 64 * 1024;

}  // namespace

MergedSliceTextReader::MergedSliceTextReader(
    std::unique_ptr<fs::DfsReader> reader, std::vector<SliceLocation> parts,
    std::vector<uint64_t> run_end, table::Schema schema)
    : reader_(std::move(reader)),
      parts_(std::move(parts)),
      run_end_(std::move(run_end)),
      schema_(std::move(schema)) {}

Result<std::unique_ptr<MergedSliceTextReader>> MergedSliceTextReader::Open(
    const std::shared_ptr<fs::MiniDfs>& dfs, const std::string& file,
    std::vector<SliceLocation> parts, table::Schema schema) {
  DGF_ASSIGN_OR_RETURN(auto reader, dfs->OpenForRead(file));
  // run_end_[i]: keep reading contiguously while the gap to the next part is
  // small; computed back-to-front so a run of close parts shares one cap.
  std::vector<uint64_t> run_end(parts.size());
  for (size_t i = parts.size(); i-- > 0;) {
    run_end[i] = parts[i].end;
    if (i + 1 < parts.size() &&
        parts[i + 1].start - parts[i].end <= kGapReadThrough) {
      run_end[i] = run_end[i + 1];
    }
  }
  return std::unique_ptr<MergedSliceTextReader>(new MergedSliceTextReader(
      std::move(reader), std::move(parts), std::move(run_end),
      std::move(schema)));
}

bool MergedSliceTextReader::AdvancePart() {
  if (next_part_ >= parts_.size()) return false;
  const SliceLocation& part = parts_[next_part_];
  fill_cap_ = run_end_[next_part_];
  ++next_part_;
  ++seeks_;  // one positional jump per part, buffered or not
  const uint64_t buffered_end = file_pos_ + (buffer_.size() - buffer_pos_);
  if (part.start >= file_pos_ && part.start <= buffered_end) {
    // The gap (if any) is already in the buffer: skip in place, no Pread.
    buffer_pos_ += static_cast<size_t>(part.start - file_pos_);
  } else {
    buffer_.clear();
    buffer_pos_ = 0;
  }
  file_pos_ = part.start;
  part_end_ = part.end;
  fill_exhausted_ = false;
  return true;
}

Status MergedSliceTextReader::FillBuffer() {
  if (buffer_pos_ > 0) {
    buffer_.erase(0, buffer_pos_);
    buffer_pos_ = 0;
  }
  const uint64_t read_at = file_pos_ + buffer_.size();
  if (read_at >= fill_cap_) {
    fill_exhausted_ = true;
    return Status::OK();
  }
  const uint64_t want = std::min(kMergedReadChunk, fill_cap_ - read_at);
  std::string chunk;
  DGF_RETURN_IF_ERROR(reader_->Pread(read_at, want, &chunk));
  if (chunk.empty()) {
    fill_exhausted_ = true;
  } else {
    bytes_read_ += chunk.size();
    buffer_ += chunk;
  }
  return Status::OK();
}

Result<bool> MergedSliceTextReader::NextLineView(std::string_view* line) {
  for (;;) {
    if (file_pos_ >= part_end_) {
      if (!AdvancePart()) return false;
      continue;
    }
    const size_t nl = buffer_.find('\n', buffer_pos_);
    if (nl != std::string::npos &&
        // A newline beyond the current part belongs to a later part (or the
        // gap); parts end on line boundaries, so this only guards corrupt
        // metadata from over-reading.
        file_pos_ + (nl - buffer_pos_) < part_end_) {
      line_start_ = file_pos_;
      *line = std::string_view(buffer_).substr(buffer_pos_, nl - buffer_pos_);
      file_pos_ += (nl - buffer_pos_) + 1;
      buffer_pos_ = nl + 1;
      return true;
    }
    if (fill_exhausted_) {
      if (buffer_pos_ >= buffer_.size()) {
        // Ran dry inside the part (truncated file); move on.
        file_pos_ = part_end_;
        continue;
      }
      // Final line without trailing newline.
      const size_t take = std::min<size_t>(
          buffer_.size() - buffer_pos_,
          static_cast<size_t>(part_end_ - file_pos_));
      line_start_ = file_pos_;
      *line = std::string_view(buffer_).substr(buffer_pos_, take);
      file_pos_ += take;
      buffer_pos_ += take;
      return true;
    }
    DGF_RETURN_IF_ERROR(FillBuffer());
  }
}

Result<bool> MergedSliceTextReader::Next(table::Row* row) {
  std::string_view line;
  DGF_ASSIGN_OR_RETURN(bool have, NextLineView(&line));
  if (!have) return false;
  DGF_RETURN_IF_ERROR(
      table::ParseRowTextInto(line, schema_, row, &fields_scratch_));
  return true;
}

Result<std::unique_ptr<SliceRecordReader>> SliceRecordReader::Open(
    std::shared_ptr<fs::MiniDfs> dfs, const SlicedSplit& sliced,
    table::Schema schema, table::FileFormat format) {
  std::unique_ptr<SliceRecordReader> out(new SliceRecordReader(
      std::move(dfs), sliced, std::move(schema), format));
  if (format == table::FileFormat::kText && !out->sliced_.slices.empty()) {
    // All of a split's slices live in one file: serve them with one merged
    // stream so adjacent/near slices share Preads.
    DGF_ASSIGN_OR_RETURN(
        auto merged,
        MergedSliceTextReader::Open(out->dfs_, out->sliced_.split.path,
                                    out->sliced_.slices, out->schema_));
    out->merged_ = merged.get();
    out->current_ = std::move(merged);
  }
  return out;
}

Status SliceRecordReader::AdvanceSlice() {
  if (current_ != nullptr) {
    finished_bytes_ += current_->BytesRead();
    current_.reset();
  }
  if (next_slice_ >= sliced_.slices.size()) return Status::OK();
  const SliceLocation& slice = sliced_.slices[next_slice_++];
  DGF_ASSIGN_OR_RETURN(current_,
                       OpenSliceReader(dfs_, slice, schema_, format_));
  ++seeks_;
  return Status::OK();
}

Result<bool> SliceRecordReader::Next(table::Row* row) {
  if (merged_ != nullptr) return merged_->Next(row);
  for (;;) {
    if (current_ == nullptr) {
      DGF_RETURN_IF_ERROR(AdvanceSlice());
      if (current_ == nullptr) return false;
    }
    DGF_ASSIGN_OR_RETURN(bool more, current_->Next(row));
    if (more) return true;
    finished_bytes_ += current_->BytesRead();
    current_.reset();
  }
}

uint64_t SliceRecordReader::SeekCount() const {
  return merged_ != nullptr ? merged_->SeekCount() : seeks_;
}

uint64_t SliceRecordReader::CurrentBlockOffset() const {
  return current_ != nullptr ? current_->CurrentBlockOffset() : 0;
}

uint64_t SliceRecordReader::BytesRead() const {
  return finished_bytes_ + (current_ != nullptr ? current_->BytesRead() : 0);
}

}  // namespace dgf::core
