#include "dgf/aggregators.h"

#include <algorithm>
#include <cctype>
#include <limits>

#include "common/string_util.h"

namespace dgf::core {
namespace {

std::string ToLower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

}  // namespace

const char* AggFuncName(AggFunc func) {
  switch (func) {
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kCount:
      return "count";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
    case AggFunc::kSumProduct:
      return "sum";  // rendered as sum(a*b)
    case AggFunc::kAvg:
      return "avg";
  }
  return "?";
}

std::string AggSpec::ToString() const {
  if (func == AggFunc::kCount && column_a.empty()) return "count(*)";
  if (func == AggFunc::kSumProduct) {
    return "sum(" + ToLower(column_a) + "*" + ToLower(column_b) + ")";
  }
  return std::string(AggFuncName(func)) + "(" + ToLower(column_a) + ")";
}

Result<AggSpec> AggSpec::Parse(std::string_view text) {
  const std::string lower = ToLower(TrimString(text));
  const size_t open = lower.find('(');
  const size_t close = lower.rfind(')');
  if (open == std::string::npos || close != lower.size() - 1 || close <= open) {
    return Status::InvalidArgument("bad aggregation: " + std::string(text));
  }
  const std::string name = lower.substr(0, open);
  const std::string arg = lower.substr(open + 1, close - open - 1);
  AggSpec spec;
  if (name == "count") {
    spec.func = AggFunc::kCount;
    if (arg != "*") spec.column_a = arg;
    return spec;
  }
  if (name == "min") {
    spec.func = AggFunc::kMin;
  } else if (name == "max") {
    spec.func = AggFunc::kMax;
  } else if (name == "sum") {
    const size_t star = arg.find('*');
    if (star != std::string::npos) {
      spec.func = AggFunc::kSumProduct;
      spec.column_a = std::string(TrimString(arg.substr(0, star)));
      spec.column_b = std::string(TrimString(arg.substr(star + 1)));
      if (spec.column_a.empty() || spec.column_b.empty()) {
        return Status::InvalidArgument("bad sum-of-products: " +
                                       std::string(text));
      }
      return spec;
    }
    spec.func = AggFunc::kSum;
  } else if (name == "avg") {
    spec.func = AggFunc::kAvg;
  } else {
    return Status::InvalidArgument("unknown aggregation: " + name);
  }
  spec.column_a = std::string(TrimString(arg));
  if (spec.column_a.empty()) {
    return Status::InvalidArgument("missing column: " + std::string(text));
  }
  return spec;
}

Result<AggregatorList> AggregatorList::Create(std::vector<AggSpec> specs,
                                              const table::Schema& schema) {
  std::vector<int> col_a(specs.size(), -1);
  std::vector<int> col_b(specs.size(), -1);
  for (size_t i = 0; i < specs.size(); ++i) {
    const AggSpec& spec = specs[i];
    if (spec.func == AggFunc::kAvg) {
      return Status::InvalidArgument(
          "avg is not additive; expand to sum/count before building "
          "aggregators (the query executor does this)");
    }
    if (!spec.column_a.empty()) {
      DGF_ASSIGN_OR_RETURN(col_a[i], schema.FieldIndex(spec.column_a));
      if (schema.field(col_a[i]).type == table::DataType::kString &&
          spec.func != AggFunc::kCount) {
        return Status::InvalidArgument("cannot aggregate string column " +
                                       spec.column_a);
      }
    }
    if (spec.func == AggFunc::kSumProduct) {
      DGF_ASSIGN_OR_RETURN(col_b[i], schema.FieldIndex(spec.column_b));
      if (schema.field(col_b[i]).type == table::DataType::kString) {
        return Status::InvalidArgument("cannot multiply string column " +
                                       spec.column_b);
      }
    }
  }
  return AggregatorList(std::move(specs), std::move(col_a), std::move(col_b));
}

Result<int> AggregatorList::IndexOf(const AggSpec& spec) const {
  for (size_t i = 0; i < specs_.size(); ++i) {
    if (specs_[i] == spec) return static_cast<int>(i);
  }
  return Status::NotFound("aggregation not precomputed: " + spec.ToString());
}

std::vector<double> AggregatorList::Identity() const {
  std::vector<double> header;
  header.reserve(specs_.size());
  for (const AggSpec& spec : specs_) {
    switch (spec.func) {
      case AggFunc::kSum:
      case AggFunc::kCount:
      case AggFunc::kSumProduct:
        header.push_back(0.0);
        break;
      case AggFunc::kMin:
        header.push_back(std::numeric_limits<double>::infinity());
        break;
      case AggFunc::kMax:
        header.push_back(-std::numeric_limits<double>::infinity());
        break;
      case AggFunc::kAvg:
        header.push_back(0.0);  // unreachable: Create rejects kAvg
        break;
    }
  }
  return header;
}

void AggregatorList::Update(std::vector<double>* header,
                            const table::Row& row) const {
  for (size_t i = 0; i < specs_.size(); ++i) {
    double& acc = (*header)[i];
    switch (specs_[i].func) {
      case AggFunc::kCount:
        acc += 1.0;
        break;
      case AggFunc::kSum:
        acc += row[static_cast<size_t>(col_a_[i])].AsDouble();
        break;
      case AggFunc::kSumProduct:
        acc += row[static_cast<size_t>(col_a_[i])].AsDouble() *
               row[static_cast<size_t>(col_b_[i])].AsDouble();
        break;
      case AggFunc::kMin:
        acc = std::min(acc, row[static_cast<size_t>(col_a_[i])].AsDouble());
        break;
      case AggFunc::kMax:
        acc = std::max(acc, row[static_cast<size_t>(col_a_[i])].AsDouble());
        break;
      case AggFunc::kAvg:
        break;  // unreachable: Create rejects kAvg
    }
  }
}

void AggregatorList::Merge(std::vector<double>* acc,
                           const std::vector<double>& delta) const {
  for (size_t i = 0; i < specs_.size(); ++i) {
    switch (specs_[i].func) {
      case AggFunc::kSum:
      case AggFunc::kCount:
      case AggFunc::kSumProduct:
        (*acc)[i] += delta[i];
        break;
      case AggFunc::kMin:
        (*acc)[i] = std::min((*acc)[i], delta[i]);
        break;
      case AggFunc::kMax:
        (*acc)[i] = std::max((*acc)[i], delta[i]);
        break;
      case AggFunc::kAvg:
        break;  // unreachable: Create rejects kAvg
    }
  }
}

std::string AggregatorList::Serialize() const {
  std::string out;
  for (const AggSpec& spec : specs_) {
    out += spec.ToString();
    out += '\n';
  }
  return out;
}

Result<AggregatorList> AggregatorList::Deserialize(
    std::string_view data, const table::Schema& schema) {
  std::vector<AggSpec> specs;
  for (std::string_view line : SplitString(data, '\n')) {
    if (TrimString(line).empty()) continue;
    DGF_ASSIGN_OR_RETURN(AggSpec spec, AggSpec::Parse(line));
    specs.push_back(std::move(spec));
  }
  return Create(std::move(specs), schema);
}

}  // namespace dgf::core
