#ifndef DGF_DGF_GFU_H_
#define DGF_DGF_GFU_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace dgf::core {

/// Grid File Unit key: the per-dimension cell ordinals of one cube.
///
/// Encoded order-preservingly (dimension 0 most significant), so a KV range
/// scan over encoded keys walks the grid in row-major order. The paper's
/// "7_13" key (lower-left coordinates) corresponds to the cell ordinals here;
/// SplittingPolicy::CellLowerBound recovers the coordinates.
struct GfuKey {
  std::vector<int64_t> cells;

  std::string Encode() const;
  /// Allocation-free Encode into a reused buffer (cleared first) for hot
  /// loops that encode one key per enumerated cell.
  void EncodeInto(std::string* out) const;
  static Result<GfuKey> Decode(std::string_view encoded, int num_dims);

  /// Human-readable "7_13" form used in logs and the paper's figures.
  std::string ToString() const;

  friend bool operator==(const GfuKey& a, const GfuKey& b) {
    return a.cells == b.cells;
  }
  friend bool operator<(const GfuKey& a, const GfuKey& b) {
    return a.cells < b.cells;
  }
};

/// Byte range of one Slice: a contiguous run of records (all belonging to a
/// single GFU) inside a reorganized data file.
struct SliceLocation {
  std::string file;
  uint64_t start = 0;
  /// Exclusive end offset (the paper stores the inclusive last byte; we store
  /// one-past-the-end, which composes with Pread directly).
  uint64_t end = 0;

  uint64_t length() const { return end - start; }

  friend bool operator==(const SliceLocation& a, const SliceLocation& b) {
    return a.file == b.file && a.start == b.start && a.end == b.end;
  }
};

/// GFU value: the pre-computed aggregate header plus the locations of the
/// GFU's slices (one slice per build/append batch that touched the cube).
struct GfuValue {
  /// One accumulator per pre-computed aggregation, in AggregatorList order.
  std::vector<double> header;
  /// Number of records in this GFU (kept even when no aggregations are
  /// configured; needed for merge-correct min/max and for stats).
  uint64_t record_count = 0;
  std::vector<SliceLocation> slices;

  std::string Encode() const;
  static Result<GfuValue> Decode(std::string_view encoded);
};

/// Key prefixes inside the index KV store. GFU entries sort after meta
/// entries; both live in one store per index.
inline constexpr char kGfuKeyPrefix = 'G';
inline constexpr const char* kMetaPolicyKey = "M:policy";
inline constexpr const char* kMetaAggsKey = "M:aggs";
inline constexpr const char* kMetaDimMinPrefix = "M:dim_min:";
inline constexpr const char* kMetaDimMaxPrefix = "M:dim_max:";
inline constexpr const char* kMetaDataDirKey = "M:data_dir";
inline constexpr const char* kMetaDataFormatKey = "M:data_format";
inline constexpr const char* kMetaNumFilesKey = "M:num_files";
/// Next append batch id. Published with the batch it names, so after a crash
/// the recovered value counts exactly the batches whose publish landed — the
/// builder crash sweep reads it to pick the legal row-prefix oracle.
inline constexpr const char* kMetaBatchKey = "M:batch";

}  // namespace dgf::core

#endif  // DGF_DGF_GFU_H_
