#include "dgf/dgf_index.h"

#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/string_util.h"
#include "dgf/dgf_input_format.h"
#include "table/text_format.h"

namespace dgf::core {
namespace {

using table::DataType;
using table::Value;

// Upper bound on the number of cells a single lookup may enumerate; a box
// larger than this means the splitting policy is far too fine for the query
// pattern (the paper's policy-choice discussion) and we fail loudly instead
// of grinding.
constexpr uint64_t kMaxLookupCells = 8ULL << 20;

}  // namespace

Result<std::unique_ptr<DgfIndex>> DgfIndex::Open(
    std::shared_ptr<fs::MiniDfs> dfs, std::shared_ptr<kv::KvStore> store,
    table::Schema schema) {
  DGF_ASSIGN_OR_RETURN(std::string policy_text, store->Get(kMetaPolicyKey));
  DGF_ASSIGN_OR_RETURN(SplittingPolicy policy,
                       SplittingPolicy::Deserialize(policy_text));
  DGF_ASSIGN_OR_RETURN(std::string aggs_text, store->Get(kMetaAggsKey));
  DGF_ASSIGN_OR_RETURN(AggregatorList aggs,
                       AggregatorList::Deserialize(aggs_text, schema));
  DGF_ASSIGN_OR_RETURN(std::string data_dir, store->Get(kMetaDataDirKey));
  table::FileFormat format = table::FileFormat::kText;
  if (auto format_text = store->Get(kMetaDataFormatKey);
      format_text.ok() && *format_text == "rcfile") {
    format = table::FileFormat::kRcFile;
  }
  return std::unique_ptr<DgfIndex>(new DgfIndex(
      std::move(dfs), std::move(store), std::move(schema), std::move(policy),
      std::move(aggs), std::move(data_dir), format));
}

table::TableDesc DgfIndex::DataDesc() const {
  table::TableDesc desc;
  desc.name = "__dgf_data__";
  desc.schema = schema_;
  desc.format = data_format_;
  desc.dir = data_dir_;
  return desc;
}

Result<uint64_t> DgfIndex::NumGfus() const {
  uint64_t count = 0;
  auto it = store_->NewIterator();
  const std::string prefix(1, kGfuKeyPrefix);
  for (it->Seek(prefix); it->Valid(); it->Next()) {
    if (it->key().empty() || it->key().front() != kGfuKeyPrefix) break;
    ++count;
  }
  return count;
}

Result<GfuValue> DgfIndex::GetGfu(const GfuKey& key) const {
  DGF_ASSIGN_OR_RETURN(std::string encoded, store_->Get(key.Encode()));
  return GfuValue::Decode(encoded);
}

Result<int64_t> DgfIndex::MetaCell(const std::string& prefix, int dim) const {
  DGF_ASSIGN_OR_RETURN(std::string text,
                       store_->Get(prefix + std::to_string(dim)));
  return ParseInt64(text);
}

bool DgfIndex::CoversAggregations(const std::vector<AggSpec>& requested) const {
  for (const AggSpec& spec : requested) {
    if (!aggs_.IndexOf(spec).ok()) return false;
  }
  return !requested.empty();
}

Result<DgfIndex::CellRange> DgfIndex::DimCellRange(
    int dim, const query::Predicate& pred, uint64_t* kv_gets) const {
  const DimensionPolicy& dp = policy_.dim(dim);
  const query::ColumnRange* range = pred.FindColumn(dp.column);

  CellRange out;
  // Stored domain of this dimension (cells observed at build time). Also the
  // completion for missing predicate dimensions — the paper's partial query
  // handling fetches these from the KV store.
  DGF_ASSIGN_OR_RETURN(const int64_t min_cell, MetaCell(kMetaDimMinPrefix, dim));
  DGF_ASSIGN_OR_RETURN(const int64_t max_cell, MetaCell(kMetaDimMaxPrefix, dim));
  *kv_gets += 2;

  if (range == nullptr ||
      (!range->lower.has_value() && !range->upper.has_value())) {
    // Unconstrained: whole domain, and every cell is inner on this axis.
    out.lo = out.inner_lo = min_cell;
    out.hi = out.inner_hi = max_cell;
    return out;
  }

  if (dp.type == DataType::kDouble) {
    // Real-valued dimension: work with the bound values directly.
    double lo_value = -std::numeric_limits<double>::infinity();
    bool lo_inclusive = true;
    double hi_value = std::numeric_limits<double>::infinity();
    bool hi_inclusive = true;
    if (range->lower.has_value()) {
      lo_value = range->lower->value.AsDouble();
      lo_inclusive = range->lower->inclusive;
    }
    if (range->upper.has_value()) {
      hi_value = range->upper->value.AsDouble();
      hi_inclusive = range->upper->inclusive;
    }
    if (lo_value > hi_value || (lo_value == hi_value && !(lo_inclusive && hi_inclusive))) {
      return out;  // empty
    }
    out.lo = std::isinf(lo_value) ? min_cell
                                  : policy_.CellOf(dim, Value::Double(lo_value));
    if (std::isinf(hi_value)) {
      out.hi = max_cell;
    } else {
      out.hi = policy_.CellOf(dim, Value::Double(hi_value));
      // An exclusive upper bound sitting exactly on a cell edge does not
      // reach into that cell.
      if (!hi_inclusive &&
          hi_value == policy_.CellLowerBound(dim, out.hi).AsDouble()) {
        --out.hi;
      }
    }
    out.lo = std::max(out.lo, min_cell);
    out.hi = std::min(out.hi, max_cell);
    // Inner cells: [cell_lb, cell_ub) fully inside the value range.
    out.inner_lo = out.lo;
    if (!std::isinf(lo_value)) {
      const double lb = policy_.CellLowerBound(dim, out.lo).AsDouble();
      const bool lo_cell_inner = lo_inclusive ? (lb >= lo_value) : (lb > lo_value);
      out.inner_lo = lo_cell_inner ? out.lo : out.lo + 1;
    }
    out.inner_hi = out.hi;
    if (!std::isinf(hi_value)) {
      const double ub = policy_.CellUpperBound(dim, out.hi).AsDouble();
      // Cell values are < ub; they all satisfy "< hi" or "<= hi" iff ub <= hi.
      const bool hi_cell_inner = ub <= hi_value;
      out.inner_hi = hi_cell_inner ? out.hi : out.hi - 1;
    }
    return out;
  }

  // Integer / date dimension: convert to an effective closed integer range.
  int64_t lo = INT64_MIN, hi = INT64_MAX;
  bool lo_bounded = false, hi_bounded = false;
  if (range->lower.has_value()) {
    lo = range->lower->value.int64();
    if (!range->lower->inclusive) ++lo;
    lo_bounded = true;
  }
  if (range->upper.has_value()) {
    hi = range->upper->value.int64();
    if (!range->upper->inclusive) --hi;
    hi_bounded = true;
  }
  if (lo > hi) return out;  // empty
  out.lo = lo_bounded ? policy_.CellOf(dim, Value::Int64(lo)) : min_cell;
  out.hi = hi_bounded ? policy_.CellOf(dim, Value::Int64(hi)) : max_cell;
  out.lo = std::max(out.lo, min_cell);
  out.hi = std::min(out.hi, max_cell);
  // Inner: the cell's closed value range [lb, ub-1] within [lo, hi].
  out.inner_lo = out.lo;
  if (lo_bounded && policy_.CellLowerBound(dim, out.lo).int64() < lo) {
    out.inner_lo = out.lo + 1;
  }
  out.inner_hi = out.hi;
  if (hi_bounded && policy_.CellUpperBound(dim, out.hi).int64() - 1 > hi) {
    out.inner_hi = out.hi - 1;
  }
  return out;
}

Result<DgfIndex::LookupResult> DgfIndex::Lookup(const query::Predicate& pred,
                                                bool aggregation) {
  LookupResult result;
  result.aggregation_path = aggregation;
  result.inner_header = aggs_.Identity();

  const int num_dims = policy_.num_dims();
  std::vector<CellRange> ranges(static_cast<size_t>(num_dims));
  uint64_t total_cells = 1;
  for (int d = 0; d < num_dims; ++d) {
    DGF_ASSIGN_OR_RETURN(ranges[static_cast<size_t>(d)],
                         DimCellRange(d, pred, &result.kv_gets));
    const CellRange& r = ranges[static_cast<size_t>(d)];
    if (r.empty()) return result;  // provably no matching data
    total_cells *= static_cast<uint64_t>(r.hi - r.lo + 1);
    if (total_cells > kMaxLookupCells) {
      return Status::OutOfRange(
          "query region spans too many GFUs; use a coarser splitting policy");
    }
  }

  // Folds one present GFU cell into the result.
  const auto absorb = [&](const GfuKey& cell_key,
                          const GfuValue& value) -> void {
    bool inner = true;
    for (int d = 0; d < num_dims; ++d) {
      const CellRange& r = ranges[static_cast<size_t>(d)];
      const int64_t c = cell_key.cells[static_cast<size_t>(d)];
      if (c < r.inner_lo || c > r.inner_hi) {
        inner = false;
        break;
      }
    }
    if (inner && aggregation) {
      aggs_.Merge(&result.inner_header, value.header);
      result.inner_records += value.record_count;
      ++result.inner_gfus;
    } else {
      result.slices.insert(result.slices.end(), value.slices.begin(),
                           value.slices.end());
      if (inner) {
        ++result.inner_gfus;
      } else {
        ++result.boundary_gfus;
      }
    }
  };

  // Strategy: small boxes use per-cell point gets; large boxes open one
  // HBase-style scanner over the box's encoded key range (row-major order)
  // and filter streamed entries against the box.
  constexpr uint64_t kScanThresholdCells = 512;
  if (total_cells <= kScanThresholdCells) {
    GfuKey key;
    std::vector<int64_t> cursor(static_cast<size_t>(num_dims));
    for (int d = 0; d < num_dims; ++d) {
      cursor[static_cast<size_t>(d)] = ranges[static_cast<size_t>(d)].lo;
    }
    for (;;) {
      key.cells.assign(cursor.begin(), cursor.end());
      ++result.kv_gets;
      auto encoded = store_->Get(key.Encode());
      if (encoded.ok()) {
        DGF_ASSIGN_OR_RETURN(GfuValue value, GfuValue::Decode(*encoded));
        absorb(key, value);
      } else if (!encoded.status().IsNotFound()) {
        return encoded.status();
      }
      int d = num_dims - 1;
      for (; d >= 0; --d) {
        const CellRange& r = ranges[static_cast<size_t>(d)];
        if (++cursor[static_cast<size_t>(d)] <= r.hi) break;
        cursor[static_cast<size_t>(d)] = r.lo;
      }
      if (d < 0) break;
    }
    return result;
  }

  GfuKey lower_key, upper_key;
  for (int d = 0; d < num_dims; ++d) {
    lower_key.cells.push_back(ranges[static_cast<size_t>(d)].lo);
    upper_key.cells.push_back(ranges[static_cast<size_t>(d)].hi);
  }
  const std::string lower = lower_key.Encode();
  const std::string upper = upper_key.Encode();
  auto it = store_->NewIterator();
  ++result.kv_gets;  // scanner open
  for (it->Seek(lower); it->Valid() && it->key() <= upper; it->Next()) {
    ++result.kv_scan_entries;
    if (it->key().empty() || it->key().front() != kGfuKeyPrefix) break;
    DGF_ASSIGN_OR_RETURN(GfuKey key, GfuKey::Decode(it->key(), num_dims));
    bool in_box = true;
    for (int d = 0; d < num_dims && in_box; ++d) {
      const CellRange& r = ranges[static_cast<size_t>(d)];
      const int64_t c = key.cells[static_cast<size_t>(d)];
      in_box = (c >= r.lo && c <= r.hi);
    }
    if (!in_box) continue;
    DGF_ASSIGN_OR_RETURN(GfuValue value, GfuValue::Decode(it->value()));
    absorb(key, value);
  }
  return result;
}

Status DgfIndex::AddAggregation(const AggSpec& spec) {
  if (aggs_.IndexOf(spec).ok()) {
    return Status::AlreadyExists("aggregation already precomputed: " +
                                 spec.ToString());
  }
  std::vector<AggSpec> extended = aggs_.specs();
  extended.push_back(spec);
  DGF_ASSIGN_OR_RETURN(AggregatorList new_aggs,
                       AggregatorList::Create(extended, schema_));
  // One-aggregator list to compute the new header slot per GFU.
  DGF_ASSIGN_OR_RETURN(AggregatorList only_new,
                       AggregatorList::Create({spec}, schema_));

  // Rewrite every GFU: scan its slices, compute the new accumulator, append.
  auto it = store_->NewIterator();
  const std::string prefix(1, kGfuKeyPrefix);
  std::vector<std::pair<std::string, std::string>> rewrites;
  for (it->Seek(prefix); it->Valid(); it->Next()) {
    if (it->key().empty() || it->key().front() != kGfuKeyPrefix) break;
    DGF_ASSIGN_OR_RETURN(GfuValue value, GfuValue::Decode(it->value()));
    std::vector<double> acc = only_new.Identity();
    for (const SliceLocation& slice : value.slices) {
      DGF_ASSIGN_OR_RETURN(auto reader,
                           OpenSliceReader(dfs_, slice, schema_, data_format_));
      table::Row row;
      for (;;) {
        DGF_ASSIGN_OR_RETURN(bool more, reader->Next(&row));
        if (!more) break;
        only_new.Update(&acc, row);
      }
    }
    value.header.push_back(acc[0]);
    rewrites.emplace_back(std::string(it->key()), value.Encode());
  }
  for (const auto& [key, encoded] : rewrites) {
    DGF_RETURN_IF_ERROR(store_->Put(key, encoded));
  }
  DGF_RETURN_IF_ERROR(store_->Put(kMetaAggsKey, new_aggs.Serialize()));
  aggs_ = std::move(new_aggs);
  return Status::OK();
}

}  // namespace dgf::core
