#include "dgf/dgf_index.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <span>
#include <thread>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "dgf/dgf_input_format.h"
#include "table/text_format.h"

namespace dgf::core {
namespace {

using table::DataType;
using table::Value;

// Upper bound on the number of cells a single lookup may enumerate; a box
// larger than this means the splitting policy is far too fine for the query
// pattern (the paper's policy-choice discussion) and we fail loudly instead
// of grinding.
constexpr uint64_t kMaxLookupCells = 8ULL << 20;

// One MultiGet round trip resolves up to this many cache-missed cells.
constexpr size_t kMultiGetBatch = 256;

// Large-box scanner: entries buffered per wave, and the miss count below
// which a wave is decoded serially (fan-out overhead beats the win).
constexpr size_t kScanWaveSize = 8192;
constexpr size_t kParallelDecodeThreshold = 256;

/// Lazily started pool shared by every index's large-box decode. Waves use a
/// local completion latch rather than WaitIdle() so concurrent lookups can
/// share the workers without barriering each other.
ThreadPool& DecodePool() {
  static ThreadPool pool(static_cast<int>(
      std::clamp(std::thread::hardware_concurrency(), 2u, 8u)));
  return pool;
}

}  // namespace

/// Deferred-deletion anchor for data files replaced by the slice optimizer.
///
/// Every Snapshot pins the guard that was current at pin time. When the
/// optimizer retires files it closes the current guard — attaching the
/// retired paths and a reference to the fresh successor guard — and swaps
/// the successor in for future pins. The closed guard's destructor deletes
/// the attached files, and it runs only once every pin of this guard AND of
/// every older guard is gone (older guards hold their successor alive
/// through `next_`): exactly the set of snapshots whose KV state could still
/// reference the retired files.
class RetireGuard {
 public:
  explicit RetireGuard(std::shared_ptr<fs::MiniDfs> dfs)
      : dfs_(std::move(dfs)) {}

  RetireGuard(const RetireGuard&) = delete;
  RetireGuard& operator=(const RetireGuard&) = delete;

  ~RetireGuard() {
    for (const std::string& path : files_) {
      Status st = dfs_->Delete(path);
      if (!st.ok() && !st.IsNotFound()) {
        DGF_LOG(kWarn) << "retired file delete: " << st.ToString();
      }
    }
  }

  /// Seals this guard: `files` await deletion, `next` (the successor guard)
  /// stays alive at least as long as this one. Called once, under the
  /// index's guard_mu_; the destructor's reads are ordered after all Close
  /// calls by the shared_ptr refcount release.
  void Close(std::vector<std::string> files, std::shared_ptr<RetireGuard> next) {
    files_ = std::move(files);
    next_ = std::move(next);
  }

 private:
  std::shared_ptr<fs::MiniDfs> dfs_;
  std::vector<std::string> files_;
  std::shared_ptr<RetireGuard> next_;
};

DgfIndex::DgfIndex(std::shared_ptr<fs::MiniDfs> dfs,
                   std::shared_ptr<kv::KvStore> store, table::Schema schema,
                   SplittingPolicy policy, AggregatorList aggs,
                   std::string data_dir, table::FileFormat data_format)
    : dfs_(std::move(dfs)),
      store_(std::move(store)),
      schema_(std::move(schema)),
      policy_(std::move(policy)),
      data_dir_(std::move(data_dir)),
      data_format_(data_format) {
  aggs_serialized_ = aggs.Serialize();
  aggs_ = std::make_shared<const AggregatorList>(std::move(aggs));
  retire_guard_ = std::make_shared<RetireGuard>(dfs_);
}

Result<std::unique_ptr<DgfIndex>> DgfIndex::Open(
    std::shared_ptr<fs::MiniDfs> dfs, std::shared_ptr<kv::KvStore> store,
    table::Schema schema) {
  DGF_ASSIGN_OR_RETURN(std::string policy_text, store->Get(kMetaPolicyKey));
  DGF_ASSIGN_OR_RETURN(SplittingPolicy policy,
                       SplittingPolicy::Deserialize(policy_text));
  DGF_ASSIGN_OR_RETURN(std::string aggs_text, store->Get(kMetaAggsKey));
  DGF_ASSIGN_OR_RETURN(AggregatorList aggs,
                       AggregatorList::Deserialize(aggs_text, schema));
  DGF_ASSIGN_OR_RETURN(std::string data_dir, store->Get(kMetaDataDirKey));
  table::FileFormat format = table::FileFormat::kText;
  if (auto format_text = store->Get(kMetaDataFormatKey);
      format_text.ok() && *format_text == "rcfile") {
    format = table::FileFormat::kRcFile;
  }
  return std::unique_ptr<DgfIndex>(new DgfIndex(
      std::move(dfs), std::move(store), std::move(schema), std::move(policy),
      std::move(aggs), std::move(data_dir), format));
}

Result<DgfIndex::Snapshot> DgfIndex::Pin() const {
  Snapshot snap;
  // Guard before KV snapshot: the publisher applies its batch first and
  // swaps the guard second, so any KV state we can observe is covered by the
  // guard we already hold (or a newer state that references no retired
  // files).
  {
    std::lock_guard<std::mutex> lock(guard_mu_);
    snap.guard = retire_guard_;
  }
  snap.kv = store_->GetSnapshot();
  snap.epoch = snap.kv->version();
  // The aggregator list must match the pinned KV state, not the latest
  // publish: compare the snapshot's serialized list against the cached one
  // and fall back to deserializing from the snapshot when a concurrent
  // AddAggregation slipped between our KV snapshot and this read.
  auto aggs_text = snap.kv->Get(kMetaAggsKey);
  {
    std::lock_guard<std::mutex> lock(aggs_mu_);
    if (!aggs_text.ok() || *aggs_text == aggs_serialized_) {
      snap.aggs = aggs_;
      return snap;
    }
  }
  DGF_ASSIGN_OR_RETURN(AggregatorList aggs,
                       AggregatorList::Deserialize(*aggs_text, schema_));
  snap.aggs = std::make_shared<const AggregatorList>(std::move(aggs));
  return snap;
}

std::shared_ptr<const AggregatorList> DgfIndex::aggregators() const {
  std::lock_guard<std::mutex> lock(aggs_mu_);
  return aggs_;
}

void DgfIndex::SetAggs(std::shared_ptr<const AggregatorList> aggs,
                       std::string serialized) {
  std::lock_guard<std::mutex> lock(aggs_mu_);
  aggs_ = std::move(aggs);
  aggs_serialized_ = std::move(serialized);
}

void DgfIndex::RetireDataFiles(std::vector<std::string> files) {
  if (files.empty()) return;
  std::lock_guard<std::mutex> lock(guard_mu_);
  auto next = std::make_shared<RetireGuard>(dfs_);
  retire_guard_->Close(std::move(files), next);
  retire_guard_ = std::move(next);
}

table::TableDesc DgfIndex::DataDesc() const {
  table::TableDesc desc;
  desc.name = "__dgf_data__";
  desc.schema = schema_;
  desc.format = data_format_;
  desc.dir = data_dir_;
  return desc;
}

Result<uint64_t> DgfIndex::NumGfus() const {
  uint64_t count = 0;
  auto it = store_->NewIterator();
  const std::string prefix(1, kGfuKeyPrefix);
  for (it->Seek(prefix); it->Valid(); it->Next()) {
    if (it->key().empty() || it->key().front() != kGfuKeyPrefix) break;
    ++count;
  }
  return count;
}

Result<GfuValue> DgfIndex::GetGfu(const GfuKey& key) const {
  DGF_ASSIGN_OR_RETURN(std::string encoded, store_->Get(key.Encode()));
  return GfuValue::Decode(encoded);
}

Result<int64_t> DgfIndex::MetaCell(const Snapshot& snap,
                                   const std::string& prefix, int dim,
                                   LookupResult* counters) const {
  const std::string key = prefix + std::to_string(dim);
  if (auto cached = meta_cache_.Get(key, snap.epoch)) {
    ++counters->cache_hits;
    return *cached;
  }
  ++counters->cache_misses;
  ++counters->kv_gets;
  DGF_ASSIGN_OR_RETURN(std::string text, snap.kv->Get(key));
  DGF_ASSIGN_OR_RETURN(int64_t cell, ParseInt64(text));
  meta_cache_.Put(key, snap.epoch, cell);
  return cell;
}

void DgfIndex::InvalidateCache() {
  gfu_cache_.Clear();
  meta_cache_.Clear();
}

bool DgfIndex::CoversAggregations(const AggregatorList& aggs,
                                  const std::vector<AggSpec>& requested) {
  for (const AggSpec& spec : requested) {
    if (!aggs.IndexOf(spec).ok()) return false;
  }
  return !requested.empty();
}

bool DgfIndex::CoversAggregations(const std::vector<AggSpec>& requested) const {
  return CoversAggregations(*aggregators(), requested);
}

Result<DgfIndex::CellRange> DgfIndex::DimCellRange(
    const Snapshot& snap, int dim, const query::Predicate& pred,
    LookupResult* counters) const {
  const DimensionPolicy& dp = policy_.dim(dim);
  const query::ColumnRange* range = pred.FindColumn(dp.column);

  CellRange out;
  // Stored domain of this dimension (cells observed at build time). Also the
  // completion for missing predicate dimensions — the paper's partial query
  // handling fetches these from the KV store (cached after the first query).
  DGF_ASSIGN_OR_RETURN(const int64_t min_cell,
                       MetaCell(snap, kMetaDimMinPrefix, dim, counters));
  DGF_ASSIGN_OR_RETURN(const int64_t max_cell,
                       MetaCell(snap, kMetaDimMaxPrefix, dim, counters));

  if (range == nullptr ||
      (!range->lower.has_value() && !range->upper.has_value())) {
    // Unconstrained: whole domain, and every cell is inner on this axis.
    out.lo = out.inner_lo = min_cell;
    out.hi = out.inner_hi = max_cell;
    return out;
  }

  if (dp.type == DataType::kDouble) {
    // Real-valued dimension: work with the bound values directly.
    double lo_value = -std::numeric_limits<double>::infinity();
    bool lo_inclusive = true;
    double hi_value = std::numeric_limits<double>::infinity();
    bool hi_inclusive = true;
    if (range->lower.has_value()) {
      lo_value = range->lower->value.AsDouble();
      lo_inclusive = range->lower->inclusive;
    }
    if (range->upper.has_value()) {
      hi_value = range->upper->value.AsDouble();
      hi_inclusive = range->upper->inclusive;
    }
    if (lo_value > hi_value || (lo_value == hi_value && !(lo_inclusive && hi_inclusive))) {
      return out;  // empty
    }
    out.lo = std::isinf(lo_value) ? min_cell
                                  : policy_.CellOf(dim, Value::Double(lo_value));
    if (std::isinf(hi_value)) {
      out.hi = max_cell;
    } else {
      out.hi = policy_.CellOf(dim, Value::Double(hi_value));
      // An exclusive upper bound sitting exactly on a cell edge does not
      // reach into that cell.
      if (!hi_inclusive &&
          hi_value == policy_.CellLowerBound(dim, out.hi).AsDouble()) {
        --out.hi;
      }
    }
    out.lo = std::max(out.lo, min_cell);
    out.hi = std::min(out.hi, max_cell);
    // Inner cells: [cell_lb, cell_ub) fully inside the value range.
    out.inner_lo = out.lo;
    if (!std::isinf(lo_value)) {
      const double lb = policy_.CellLowerBound(dim, out.lo).AsDouble();
      const bool lo_cell_inner = lo_inclusive ? (lb >= lo_value) : (lb > lo_value);
      out.inner_lo = lo_cell_inner ? out.lo : out.lo + 1;
    }
    out.inner_hi = out.hi;
    if (!std::isinf(hi_value)) {
      const double ub = policy_.CellUpperBound(dim, out.hi).AsDouble();
      // Cell values are < ub; they all satisfy "< hi" or "<= hi" iff ub <= hi.
      const bool hi_cell_inner = ub <= hi_value;
      out.inner_hi = hi_cell_inner ? out.hi : out.hi - 1;
    }
    return out;
  }

  // Integer / date dimension: convert to an effective closed integer range.
  int64_t lo = INT64_MIN, hi = INT64_MAX;
  bool lo_bounded = false, hi_bounded = false;
  if (range->lower.has_value()) {
    lo = range->lower->value.int64();
    if (!range->lower->inclusive) ++lo;
    lo_bounded = true;
  }
  if (range->upper.has_value()) {
    hi = range->upper->value.int64();
    if (!range->upper->inclusive) --hi;
    hi_bounded = true;
  }
  if (lo > hi) return out;  // empty
  out.lo = lo_bounded ? policy_.CellOf(dim, Value::Int64(lo)) : min_cell;
  out.hi = hi_bounded ? policy_.CellOf(dim, Value::Int64(hi)) : max_cell;
  out.lo = std::max(out.lo, min_cell);
  out.hi = std::min(out.hi, max_cell);
  // Inner: the cell's closed value range [lb, ub-1] within [lo, hi].
  out.inner_lo = out.lo;
  if (lo_bounded && policy_.CellLowerBound(dim, out.lo).int64() < lo) {
    out.inner_lo = out.lo + 1;
  }
  out.inner_hi = out.hi;
  if (hi_bounded && policy_.CellUpperBound(dim, out.hi).int64() - 1 > hi) {
    out.inner_hi = out.hi - 1;
  }
  return out;
}

Result<DgfIndex::LookupResult> DgfIndex::Lookup(const query::Predicate& pred,
                                                bool aggregation) {
  DGF_ASSIGN_OR_RETURN(Snapshot snap, Pin());
  return Lookup(snap, pred, aggregation);
}

Result<DgfIndex::LookupResult> DgfIndex::Lookup(const Snapshot& snap,
                                                const query::Predicate& pred,
                                                bool aggregation) const {
  const AggregatorList& aggs = *snap.aggs;
  LookupResult result;
  result.aggregation_path = aggregation;
  result.inner_header = aggs.Identity();

  const int num_dims = policy_.num_dims();
  std::vector<CellRange> ranges(static_cast<size_t>(num_dims));
  uint64_t total_cells = 1;
  for (int d = 0; d < num_dims; ++d) {
    DGF_ASSIGN_OR_RETURN(ranges[static_cast<size_t>(d)],
                         DimCellRange(snap, d, pred, &result));
    const CellRange& r = ranges[static_cast<size_t>(d)];
    if (r.empty()) return result;  // provably no matching data
    total_cells *= static_cast<uint64_t>(r.hi - r.lo + 1);
    if (total_cells > kMaxLookupCells) {
      return Status::OutOfRange(
          "query region spans too many GFUs; use a coarser splitting policy");
    }
  }

  // Whether the cell at `cells` lies fully inside the query box.
  const auto cell_is_inner = [&](const std::vector<int64_t>& cells) -> bool {
    for (int d = 0; d < num_dims; ++d) {
      const CellRange& r = ranges[static_cast<size_t>(d)];
      const int64_t c = cells[static_cast<size_t>(d)];
      if (c < r.inner_lo || c > r.inner_hi) return false;
    }
    return true;
  };

  // Folds one present GFU cell into the result.
  const auto absorb = [&](bool inner, const GfuValue& value) -> void {
    if (inner && aggregation) {
      aggs.Merge(&result.inner_header, value.header);
      result.inner_records += value.record_count;
      ++result.inner_gfus;
    } else {
      result.slices.insert(result.slices.end(), value.slices.begin(),
                           value.slices.end());
      if (inner) {
        ++result.inner_gfus;
      } else {
        ++result.boundary_gfus;
      }
    }
  };

  // Accumulate the per-lookup cache counters into the process-wide atomics
  // on every exit path.
  struct CacheTotalsFlush {
    const DgfIndex* index;
    const LookupResult* result;
    ~CacheTotalsFlush() {
      index->cumulative_cache_hits_.fetch_add(result->cache_hits,
                                              std::memory_order_relaxed);
      index->cumulative_cache_misses_.fetch_add(result->cache_misses,
                                                std::memory_order_relaxed);
    }
  } totals_flush{this, &result};

  // Strategy: small boxes use batched point gets; large boxes open one
  // HBase-style scanner over the box's encoded key range (row-major order)
  // and filter streamed entries against the box.
  constexpr uint64_t kScanThresholdCells = 512;
  if (total_cells <= kScanThresholdCells) {
    // Enumerate the box row-major, resolving each cell cache-first. Cache
    // misses are collected and served by O(1) MultiGet round trips instead
    // of one Get per cell; kv_gets counts the round trips. The hot loop is
    // allocation-free on hits: keys encode into a reused scratch buffer and
    // only the inner/boundary bit is kept per cell.
    std::vector<std::shared_ptr<const GfuValue>> values;
    std::vector<uint8_t> inner_flags;
    values.reserve(total_cells);
    inner_flags.reserve(total_cells);
    std::vector<size_t> miss_slots;
    std::vector<std::string> miss_keys;

    GfuKey key;
    std::string encoded_key;
    std::vector<int64_t> cursor(static_cast<size_t>(num_dims));
    for (int d = 0; d < num_dims; ++d) {
      cursor[static_cast<size_t>(d)] = ranges[static_cast<size_t>(d)].lo;
    }
    for (;;) {
      key.cells.assign(cursor.begin(), cursor.end());
      key.EncodeInto(&encoded_key);
      if (auto cached = gfu_cache_.Get(encoded_key, snap.epoch)) {
        ++result.cache_hits;
        values.push_back(std::move(*cached));
      } else {
        ++result.cache_misses;
        values.push_back(nullptr);
        miss_slots.push_back(values.size() - 1);
        miss_keys.push_back(encoded_key);
      }
      inner_flags.push_back(cell_is_inner(cursor) ? 1 : 0);
      int d = num_dims - 1;
      for (; d >= 0; --d) {
        const CellRange& r = ranges[static_cast<size_t>(d)];
        if (++cursor[static_cast<size_t>(d)] <= r.hi) break;
        cursor[static_cast<size_t>(d)] = r.lo;
      }
      if (d < 0) break;
    }

    for (size_t start = 0; start < miss_keys.size(); start += kMultiGetBatch) {
      const size_t count = std::min(kMultiGetBatch, miss_keys.size() - start);
      ++result.kv_gets;  // one batched round trip
      auto batch = snap.kv->MultiGet(
          std::span<const std::string>(miss_keys).subspan(start, count));
      for (size_t j = 0; j < count; ++j) {
        const Result<std::string>& got = batch[j];
        if (!got.ok()) {
          if (got.status().IsNotFound()) continue;  // empty cell
          return got.status();
        }
        DGF_ASSIGN_OR_RETURN(GfuValue value, GfuValue::Decode(*got));
        auto shared = std::make_shared<const GfuValue>(std::move(value));
        gfu_cache_.Put(miss_keys[start + j], snap.epoch, shared);
        values[miss_slots[start + j]] = std::move(shared);
      }
    }

    // Absorb in enumeration (row-major) order so results — including the
    // FP-sum merge order of aggregation headers — match the serial path.
    for (size_t i = 0; i < values.size(); ++i) {
      if (values[i] != nullptr) absorb(inner_flags[i] != 0, *values[i]);
    }
    return result;
  }

  GfuKey lower_key, upper_key;
  for (int d = 0; d < num_dims; ++d) {
    lower_key.cells.push_back(ranges[static_cast<size_t>(d)].lo);
    upper_key.cells.push_back(ranges[static_cast<size_t>(d)].hi);
  }
  const std::string lower = lower_key.Encode();
  const std::string upper = upper_key.Encode();

  // Streamed entries are buffered into waves; each wave's cache-missed
  // values are decoded in parallel, then absorbed serially in stream order
  // (so FP-sensitive header merges stay deterministic).
  struct ScanEntry {
    GfuKey key;
    std::string encoded_key;
    std::string raw_value;  // set only when the cache missed
    std::shared_ptr<const GfuValue> value;
    bool cached = false;
  };
  std::vector<ScanEntry> wave;
  wave.reserve(kScanWaveSize);

  const auto flush_wave = [&]() -> Status {
    if (wave.empty()) return Status::OK();
    std::vector<size_t> miss;
    for (size_t i = 0; i < wave.size(); ++i) {
      if (!wave[i].cached) miss.push_back(i);
    }
    if (miss.size() >= kParallelDecodeThreshold) {
      ThreadPool& pool = DecodePool();
      const int num_tasks = pool.num_threads();
      std::atomic<size_t> next{0};
      std::vector<Status> statuses(static_cast<size_t>(num_tasks));
      std::mutex done_mu;
      std::condition_variable done_cv;
      int active = num_tasks;
      for (int t = 0; t < num_tasks; ++t) {
        pool.Submit([&, t] {
          for (size_t i = next.fetch_add(1); i < miss.size();
               i = next.fetch_add(1)) {
            ScanEntry& entry = wave[miss[i]];
            auto decoded = GfuValue::Decode(entry.raw_value);
            if (!decoded.ok()) {
              statuses[static_cast<size_t>(t)] = decoded.status();
              break;
            }
            entry.value =
                std::make_shared<const GfuValue>(std::move(*decoded));
          }
          std::lock_guard<std::mutex> lock(done_mu);
          if (--active == 0) done_cv.notify_all();
        });
      }
      std::unique_lock<std::mutex> lock(done_mu);
      done_cv.wait(lock, [&] { return active == 0; });
      for (const Status& st : statuses) DGF_RETURN_IF_ERROR(st);
    } else {
      for (size_t i : miss) {
        ScanEntry& entry = wave[i];
        DGF_ASSIGN_OR_RETURN(GfuValue decoded,
                             GfuValue::Decode(entry.raw_value));
        entry.value = std::make_shared<const GfuValue>(std::move(decoded));
      }
    }
    for (ScanEntry& entry : wave) {
      if (!entry.cached) {
        gfu_cache_.Put(entry.encoded_key, snap.epoch, entry.value);
      }
      absorb(cell_is_inner(entry.key.cells), *entry.value);
    }
    wave.clear();
    return Status::OK();
  };

  auto it = snap.kv->NewIterator();
  ++result.kv_gets;  // scanner open
  for (it->Seek(lower); it->Valid() && it->key() <= upper; it->Next()) {
    ++result.kv_scan_entries;
    if (it->key().empty() || it->key().front() != kGfuKeyPrefix) break;
    DGF_ASSIGN_OR_RETURN(GfuKey key, GfuKey::Decode(it->key(), num_dims));
    bool in_box = true;
    for (int d = 0; d < num_dims && in_box; ++d) {
      const CellRange& r = ranges[static_cast<size_t>(d)];
      const int64_t c = key.cells[static_cast<size_t>(d)];
      in_box = (c >= r.lo && c <= r.hi);
    }
    if (!in_box) continue;
    ScanEntry entry;
    entry.key = std::move(key);
    entry.encoded_key.assign(it->key());
    if (auto cached = gfu_cache_.Get(entry.encoded_key, snap.epoch)) {
      ++result.cache_hits;
      entry.value = std::move(*cached);
      entry.cached = true;
    } else {
      ++result.cache_misses;
      entry.raw_value.assign(it->value());
    }
    wave.push_back(std::move(entry));
    if (wave.size() >= kScanWaveSize) DGF_RETURN_IF_ERROR(flush_wave());
  }
  DGF_RETURN_IF_ERROR(flush_wave());
  return result;
}

Status DgfIndex::AddAggregation(const AggSpec& spec) {
  // Serialize with other mutators; readers keep going against their pinned
  // snapshots throughout.
  std::unique_lock<std::mutex> mutation = AcquireMutationLock();

  std::shared_ptr<const AggregatorList> current = aggregators();
  if (current->IndexOf(spec).ok()) {
    return Status::AlreadyExists("aggregation already precomputed: " +
                                 spec.ToString());
  }
  std::vector<AggSpec> extended = current->specs();
  extended.push_back(spec);
  DGF_ASSIGN_OR_RETURN(AggregatorList new_aggs,
                       AggregatorList::Create(extended, schema_));
  // One-aggregator list to compute the new header slot per GFU.
  DGF_ASSIGN_OR_RETURN(AggregatorList only_new,
                       AggregatorList::Create({spec}, schema_));

  // Rewrite every GFU: scan its slices, compute the new accumulator, append.
  // The scan runs against a pinned snapshot; the mutation lock guarantees
  // nothing publishes between it and our ApplyBatch below.
  DGF_ASSIGN_OR_RETURN(Snapshot snap, Pin());
  auto it = snap.kv->NewIterator();
  const std::string prefix(1, kGfuKeyPrefix);
  kv::WriteBatch batch;
  for (it->Seek(prefix); it->Valid(); it->Next()) {
    if (it->key().empty() || it->key().front() != kGfuKeyPrefix) break;
    DGF_ASSIGN_OR_RETURN(GfuValue value, GfuValue::Decode(it->value()));
    std::vector<double> acc = only_new.Identity();
    for (const SliceLocation& slice : value.slices) {
      DGF_ASSIGN_OR_RETURN(auto reader,
                           OpenSliceReader(dfs_, slice, schema_, data_format_));
      table::Row row;
      for (;;) {
        DGF_ASSIGN_OR_RETURN(bool more, reader->Next(&row));
        if (!more) break;
        only_new.Update(&acc, row);
      }
    }
    value.header.push_back(acc[0]);
    batch.Put(it->key(), value.Encode());
  }
  std::string serialized = new_aggs.Serialize();
  batch.Put(kMetaAggsKey, serialized);
  // Single atomic publish: every header grows its new slot and the list
  // under kMetaAggsKey changes in the same epoch bump.
  DGF_RETURN_IF_ERROR(store_->ApplyBatch(batch));
  SetAggs(std::make_shared<const AggregatorList>(std::move(new_aggs)),
          std::move(serialized));
  // Memory hygiene only: epoch tags already keep stale decodes from being
  // served to post-publish readers.
  InvalidateCache();
  return Status::OK();
}

}  // namespace dgf::core
