#include "dgf/gfu.h"

#include "common/encoding.h"
#include "common/string_util.h"

namespace dgf::core {

std::string GfuKey::Encode() const {
  std::string out;
  EncodeInto(&out);
  return out;
}

void GfuKey::EncodeInto(std::string* out) const {
  out->clear();
  out->push_back(kGfuKeyPrefix);
  for (int64_t cell : cells) PutOrderedInt64(out, cell);
}

Result<GfuKey> GfuKey::Decode(std::string_view encoded, int num_dims) {
  if (encoded.size() != 1 + static_cast<size_t>(num_dims) * 8 ||
      encoded.front() != kGfuKeyPrefix) {
    return Status::Corruption("bad GFU key encoding");
  }
  GfuKey key;
  key.cells.reserve(static_cast<size_t>(num_dims));
  for (int d = 0; d < num_dims; ++d) {
    key.cells.push_back(
        DecodeOrderedInt64(encoded.data() + 1 + static_cast<size_t>(d) * 8));
  }
  return key;
}

std::string GfuKey::ToString() const {
  std::string out;
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out.push_back('_');
    out += std::to_string(cells[i]);
  }
  return out;
}

std::string GfuValue::Encode() const {
  std::string out;
  PutVarint64(&out, header.size());
  for (double h : header) PutOrderedDouble(&out, h);
  PutVarint64(&out, record_count);
  PutVarint64(&out, slices.size());
  for (const auto& slice : slices) {
    PutLengthPrefixed(&out, slice.file);
    PutVarint64(&out, slice.start);
    PutVarint64(&out, slice.end);
  }
  return out;
}

Result<GfuValue> GfuValue::Decode(std::string_view encoded) {
  GfuValue value;
  DGF_ASSIGN_OR_RETURN(uint64_t num_headers, GetVarint64(&encoded));
  value.header.reserve(num_headers);
  for (uint64_t i = 0; i < num_headers; ++i) {
    if (encoded.size() < 8) return Status::Corruption("truncated GFU header");
    value.header.push_back(DecodeOrderedDouble(encoded.data()));
    encoded.remove_prefix(8);
  }
  DGF_ASSIGN_OR_RETURN(value.record_count, GetVarint64(&encoded));
  DGF_ASSIGN_OR_RETURN(uint64_t num_slices, GetVarint64(&encoded));
  value.slices.reserve(num_slices);
  for (uint64_t i = 0; i < num_slices; ++i) {
    SliceLocation slice;
    DGF_ASSIGN_OR_RETURN(std::string_view file, GetLengthPrefixed(&encoded));
    slice.file = std::string(file);
    DGF_ASSIGN_OR_RETURN(slice.start, GetVarint64(&encoded));
    DGF_ASSIGN_OR_RETURN(slice.end, GetVarint64(&encoded));
    value.slices.push_back(std::move(slice));
  }
  if (!encoded.empty()) return Status::Corruption("trailing GFU value bytes");
  return value;
}

}  // namespace dgf::core
