#include "dgf/policy_advisor.h"

#include <algorithm>
#include <cmath>

namespace dgf::core {

double PolicyAdvisor::RangeWidth(int d, const query::Predicate& pred) const {
  const DimensionStats& stats = stats_[static_cast<size_t>(d)];
  const double domain = std::max(1.0, stats.max - stats.min);
  const query::ColumnRange* range = pred.FindColumn(stats.column);
  if (range == nullptr) return domain;
  double lo = stats.min, hi = stats.max;
  if (range->lower.has_value()) lo = range->lower->value.AsDouble();
  if (range->upper.has_value()) hi = range->upper->value.AsDouble();
  return std::clamp(hi - lo, 0.0, domain);
}

std::vector<double> PolicyAdvisor::Ladder(int d) const {
  const DimensionStats& stats = stats_[static_cast<size_t>(d)];
  const double domain = std::max(1.0, stats.max - stats.min);
  // Finest useful interval: roughly one distinct value per cell.
  double finest = domain / std::max(1.0, stats.distinct);
  if (stats.type != table::DataType::kDouble) finest = std::max(finest, 1.0);
  std::vector<double> ladder;
  const int n = std::max(2, options_.ladder_size);
  const double ratio = std::pow(domain / finest, 1.0 / (n - 1));
  double interval = finest;
  for (int i = 0; i < n; ++i) {
    double candidate = interval;
    if (stats.type != table::DataType::kDouble) {
      candidate = std::max(1.0, std::round(candidate));
    }
    if (ladder.empty() || candidate > ladder.back()) ladder.push_back(candidate);
    interval *= ratio;
  }
  return ladder;
}

double PolicyAdvisor::TotalCells(const std::vector<double>& intervals) const {
  double cells = 1;
  for (size_t d = 0; d < stats_.size(); ++d) {
    const double domain = std::max(1.0, stats_[d].max - stats_[d].min);
    cells *= std::max(1.0, domain / intervals[d]);
  }
  return cells;
}

double PolicyAdvisor::QueryCost(const std::vector<double>& intervals,
                                const query::Predicate& pred) const {
  // Selectivity and per-dimension cell counts of the query box.
  double selected_fraction = 1;
  double kv_gets = 1;
  double inner_fraction = 1;
  for (size_t d = 0; d < stats_.size(); ++d) {
    const double domain = std::max(1.0, stats_[d].max - stats_[d].min);
    const double width = RangeWidth(static_cast<int>(d), pred);
    selected_fraction *= std::min(1.0, width / domain);
    // Cells overlapped along this axis (a point query still touches one).
    const double cells = std::min(domain / intervals[d],
                                  width / intervals[d] + 1.0);
    kv_gets *= std::max(1.0, cells);
    // Fraction of the overlapped region that is fully inner on this axis.
    const double inner_cells = std::max(0.0, width / intervals[d] - 1.0);
    inner_fraction *= std::max(1.0, cells) > 0
                          ? std::min(1.0, inner_cells / std::max(1.0, cells))
                          : 0.0;
  }
  const double selected_rows = selected_fraction * options_.total_records;
  // Region actually read: boundary rows for aggregation queries, the whole
  // selected region otherwise. Whole-cell reads mean a point query still
  // fetches ~total/cells rows.
  const double rows_per_cell =
      options_.total_records / std::max(1.0, TotalCells(intervals));
  const double region_rows =
      std::max(selected_rows, kv_gets * rows_per_cell * 0.5);
  const double boundary_rows = region_rows * (1.0 - inner_fraction);
  const double scanned_rows =
      options_.aggregation_fraction * boundary_rows +
      (1.0 - options_.aggregation_fraction) * region_rows;

  const double kv_cost = kv_gets * options_.cluster.kv_get_s;
  const double scan_cost = scanned_rows * options_.record_bytes /
                           (1e6 * options_.cluster.scan_mb_per_s *
                            options_.cluster.total_map_slots());
  return kv_cost + scan_cost;
}

Result<PolicyAdvisor::Recommendation> PolicyAdvisor::Recommend(
    const std::vector<query::Predicate>& history) const {
  if (stats_.empty()) {
    return Status::InvalidArgument("advisor needs at least one dimension");
  }
  if (history.empty()) {
    return Status::InvalidArgument("advisor needs a query history");
  }
  const int num_dims = static_cast<int>(stats_.size());
  std::vector<std::vector<double>> ladders;
  for (int d = 0; d < num_dims; ++d) ladders.push_back(Ladder(d));

  const auto total_cost = [&](const std::vector<double>& intervals) {
    double cost = 0;
    for (const auto& pred : history) cost += QueryCost(intervals, pred);
    return cost / static_cast<double>(history.size());
  };

  // Start from the coarsest grid (always within the cell budget).
  std::vector<double> best(static_cast<size_t>(num_dims));
  for (int d = 0; d < num_dims; ++d) best[static_cast<size_t>(d)] = ladders[d].back();
  double best_cost = total_cost(best);

  if (num_dims <= 3) {
    // Exhaustive search over the ladder cross product.
    std::vector<size_t> idx(static_cast<size_t>(num_dims), 0);
    for (;;) {
      std::vector<double> candidate(static_cast<size_t>(num_dims));
      for (int d = 0; d < num_dims; ++d) {
        candidate[static_cast<size_t>(d)] = ladders[d][idx[static_cast<size_t>(d)]];
      }
      if (TotalCells(candidate) <= options_.max_cells) {
        const double cost = total_cost(candidate);
        if (cost < best_cost) {
          best_cost = cost;
          best = candidate;
        }
      }
      int d = num_dims - 1;
      for (; d >= 0; --d) {
        if (++idx[static_cast<size_t>(d)] < ladders[d].size()) break;
        idx[static_cast<size_t>(d)] = 0;
      }
      if (d < 0) break;
    }
  } else {
    // Coordinate descent for higher dimensionality.
    for (int pass = 0; pass < 4; ++pass) {
      for (int d = 0; d < num_dims; ++d) {
        for (double candidate_interval : ladders[d]) {
          std::vector<double> candidate = best;
          candidate[static_cast<size_t>(d)] = candidate_interval;
          if (TotalCells(candidate) > options_.max_cells) continue;
          const double cost = total_cost(candidate);
          if (cost < best_cost) {
            best_cost = cost;
            best = candidate;
          }
        }
      }
    }
  }

  Recommendation rec;
  rec.expected_query_cost = best_cost;
  rec.expected_cells = TotalCells(best);
  for (int d = 0; d < num_dims; ++d) {
    DimensionPolicy dim;
    dim.column = stats_[static_cast<size_t>(d)].column;
    dim.type = stats_[static_cast<size_t>(d)].type;
    dim.min = stats_[static_cast<size_t>(d)].min;
    dim.interval = best[static_cast<size_t>(d)];
    rec.dims.push_back(std::move(dim));
  }
  return rec;
}

}  // namespace dgf::core
