#include "dgf/splitting_policy.h"

#include <cmath>

#include "common/string_util.h"

namespace dgf::core {

using table::DataType;
using table::Value;

Result<SplittingPolicy> SplittingPolicy::Create(
    std::vector<DimensionPolicy> dims, const table::Schema& schema) {
  if (dims.empty()) {
    return Status::InvalidArgument("policy needs at least one dimension");
  }
  for (auto& dim : dims) {
    DGF_ASSIGN_OR_RETURN(int field, schema.FieldIndex(dim.column));
    dim.type = schema.field(field).type;
    if (dim.type == DataType::kString) {
      return Status::NotSupported("string dimensions cannot be gridded: " +
                                  dim.column);
    }
    if (!(dim.interval > 0)) {
      return Status::InvalidArgument("interval must be positive for " +
                                     dim.column);
    }
    if (dim.type != DataType::kDouble &&
        dim.interval != std::floor(dim.interval)) {
      return Status::InvalidArgument(
          "interval must be integral for integer/date dimension " + dim.column);
    }
  }
  // Reject duplicate columns.
  for (size_t i = 0; i < dims.size(); ++i) {
    for (size_t j = i + 1; j < dims.size(); ++j) {
      if (dims[i].column == dims[j].column) {
        return Status::InvalidArgument("duplicate dimension: " + dims[i].column);
      }
    }
  }
  return SplittingPolicy(std::move(dims));
}

Result<int> SplittingPolicy::DimIndex(const std::string& column) const {
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (table::ColumnNameEquals(dims_[i].column, column)) {
      return static_cast<int>(i);
    }
  }
  return Status::NotFound("column not in policy: " + column);
}

int64_t SplittingPolicy::CellOf(int dim, const Value& value) const {
  const DimensionPolicy& p = dims_[static_cast<size_t>(dim)];
  if (p.type == DataType::kDouble) {
    return static_cast<int64_t>(std::floor((value.AsDouble() - p.min) /
                                           p.interval));
  }
  // Integer / date path: exact arithmetic with floor division.
  const int64_t v = value.int64();
  const auto min = static_cast<int64_t>(p.min);
  const auto interval = static_cast<int64_t>(p.interval);
  const int64_t delta = v - min;
  int64_t cell = delta / interval;
  if (delta % interval != 0 && delta < 0) --cell;
  return cell;
}

Value SplittingPolicy::CellLowerBound(int dim, int64_t cell) const {
  const DimensionPolicy& p = dims_[static_cast<size_t>(dim)];
  switch (p.type) {
    case DataType::kDouble:
      return Value::Double(p.min + static_cast<double>(cell) * p.interval);
    case DataType::kDate:
      return Value::Date(static_cast<int64_t>(p.min) +
                         cell * static_cast<int64_t>(p.interval));
    default:
      return Value::Int64(static_cast<int64_t>(p.min) +
                          cell * static_cast<int64_t>(p.interval));
  }
}

Value SplittingPolicy::CellUpperBound(int dim, int64_t cell) const {
  return CellLowerBound(dim, cell + 1);
}

std::string SplittingPolicy::Serialize() const {
  // Text form: one "column,type,min,interval" per line.
  std::string out;
  for (const auto& dim : dims_) {
    out += dim.column;
    out += ',';
    out += table::DataTypeName(dim.type);
    out += ',';
    out += StringPrintf("%.17g,%.17g\n", dim.min, dim.interval);
  }
  return out;
}

Result<SplittingPolicy> SplittingPolicy::Deserialize(std::string_view data) {
  std::vector<DimensionPolicy> dims;
  for (std::string_view line : SplitString(data, '\n')) {
    if (TrimString(line).empty()) continue;
    auto parts = SplitString(line, ',');
    if (parts.size() != 4) {
      return Status::Corruption("bad policy line: " + std::string(line));
    }
    DimensionPolicy dim;
    dim.column = std::string(parts[0]);
    const std::string_view type = parts[1];
    if (type == "int64") {
      dim.type = DataType::kInt64;
    } else if (type == "double") {
      dim.type = DataType::kDouble;
    } else if (type == "date") {
      dim.type = DataType::kDate;
    } else {
      return Status::Corruption("bad policy type: " + std::string(type));
    }
    DGF_ASSIGN_OR_RETURN(dim.min, ParseDouble(parts[2]));
    DGF_ASSIGN_OR_RETURN(dim.interval, ParseDouble(parts[3]));
    dims.push_back(std::move(dim));
  }
  if (dims.empty()) return Status::Corruption("empty policy");
  return SplittingPolicy(std::move(dims));
}

std::string SplittingPolicy::ToString() const {
  std::string out = "policy{";
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) out += ", ";
    out += StringPrintf("%s:%s[min=%g,interval=%g]", dims_[i].column.c_str(),
                        table::DataTypeName(dims_[i].type), dims_[i].min,
                        dims_[i].interval);
  }
  out += "}";
  return out;
}

}  // namespace dgf::core
