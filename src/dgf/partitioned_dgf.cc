#include "dgf/partitioned_dgf.h"

#include "common/string_util.h"

namespace dgf::core {

Result<std::unique_ptr<PartitionedDgfIndex>> PartitionedDgfIndex::Build(
    std::shared_ptr<fs::MiniDfs> dfs, const table::PartitionedTable& table,
    const DgfBuilder::Options& base, const StoreFactory& store_factory) {
  const table::TableDesc& desc = table.desc();
  for (const DimensionPolicy& dim : base.dims) {
    for (const std::string& column : table.partition_columns()) {
      if (table::ColumnNameEquals(dim.column, column)) {
        return Status::InvalidArgument(
            "partition column '" + column +
            "' must not also be a grid dimension (pruning covers it)");
      }
    }
  }
  std::unique_ptr<PartitionedDgfIndex> out(
      new PartitionedDgfIndex(desc.schema, table.partition_columns()));
  for (const std::string& dir : table.PartitionDirs()) {
    Partition partition;
    partition.dir = dir;
    DGF_ASSIGN_OR_RETURN(partition.values, table.ParsePartitionPath(dir));
    DGF_ASSIGN_OR_RETURN(partition.store, store_factory(dir));

    // The partition's data is a plain (sub)table rooted at its directory.
    table::TableDesc partition_desc = desc;
    partition_desc.dir = dir;
    DgfBuilder::Options options = base;
    // Mirror the partition fragments under the index data prefix.
    options.data_dir = base.data_dir + dir.substr(desc.dir.size());
    DGF_ASSIGN_OR_RETURN(
        partition.index,
        DgfBuilder::Build(dfs, partition.store, partition_desc, options));
    out->partitions_.push_back(std::move(partition));
  }
  if (out->partitions_.empty()) {
    return Status::InvalidArgument("table has no partitions to index");
  }
  return out;
}

bool PartitionedDgfIndex::CoversAggregations(
    const std::vector<AggSpec>& requested) const {
  return !partitions_.empty() &&
         partitions_.front().index->CoversAggregations(requested);
}

Result<PartitionedDgfIndex::LookupResult> PartitionedDgfIndex::Lookup(
    const query::Predicate& pred, bool aggregation) {
  LookupResult out;
  const std::shared_ptr<const AggregatorList> aggs_holder =
      partitions_.front().index->aggregators();
  const AggregatorList& aggs = *aggs_holder;
  out.merged.aggregation_path = aggregation;
  out.merged.inner_header = aggs.Identity();
  for (Partition& partition : partitions_) {
    bool pruned = false;
    for (size_t i = 0; i < partition_columns_.size(); ++i) {
      const query::ColumnRange* range =
          pred.FindColumn(partition_columns_[i]);
      if (range != nullptr && !range->Matches(partition.values[i])) {
        pruned = true;
        break;
      }
    }
    if (pruned) {
      ++out.partitions_pruned;
      continue;
    }
    ++out.partitions_consulted;
    DGF_ASSIGN_OR_RETURN(DgfIndex::LookupResult piece,
                         partition.index->Lookup(pred, aggregation));
    aggs.Merge(&out.merged.inner_header, piece.inner_header);
    out.merged.inner_records += piece.inner_records;
    out.merged.inner_gfus += piece.inner_gfus;
    out.merged.boundary_gfus += piece.boundary_gfus;
    out.merged.kv_gets += piece.kv_gets;
    out.merged.kv_scan_entries += piece.kv_scan_entries;
    out.merged.cache_hits += piece.cache_hits;
    out.merged.cache_misses += piece.cache_misses;
    out.merged.slices.insert(out.merged.slices.end(), piece.slices.begin(),
                             piece.slices.end());
  }
  return out;
}

Result<uint64_t> PartitionedDgfIndex::IndexSizeBytes() const {
  uint64_t total = 0;
  for (const Partition& partition : partitions_) {
    DGF_ASSIGN_OR_RETURN(uint64_t size, partition.index->IndexSizeBytes());
    total += size;
  }
  return total;
}

}  // namespace dgf::core
