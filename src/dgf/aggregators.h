#ifndef DGF_DGF_AGGREGATORS_H_
#define DGF_DGF_AGGREGATORS_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "table/schema.h"

namespace dgf::core {

/// Additive aggregate functions precomputable per GFU.
///
/// These are the paper's "UDFs (need to be additive functions)": each has an
/// identity element and an associative merge, so per-slice headers can be
/// combined into per-region results without touching the data.
enum class AggFunc {
  kSum,
  kCount,
  kMin,
  kMax,
  kSumProduct,
  /// avg is NOT additive: AggregatorList rejects it. The query executor
  /// expands avg(c) into sum(c)/count(*) before building aggregators, so it
  /// exists only at the query surface.
  kAvg,
};

const char* AggFuncName(AggFunc func);

/// One aggregation specification, e.g. sum(powerConsumed) or
/// sum(l_extendedprice*l_discount).
struct AggSpec {
  AggFunc func = AggFunc::kCount;
  std::string column_a;  // empty for count(*)
  std::string column_b;  // second factor for kSumProduct

  /// Canonical text form, e.g. "sum(powerconsumed)"; used to match a query's
  /// requested aggregation against the precomputed list.
  std::string ToString() const;

  /// Parses "sum(col)", "count(*)" / "count(col)", "min(col)", "max(col)",
  /// "avg(col)" is rejected here (derive it from sum+count at query level),
  /// and "sum(a*b)" as a sum-of-products.
  static Result<AggSpec> Parse(std::string_view text);

  friend bool operator==(const AggSpec& a, const AggSpec& b) {
    return a.func == b.func && a.column_a == b.column_a &&
           a.column_b == b.column_b;
  }
};

/// A resolved, ordered list of aggregators over a concrete schema; header
/// vectors (std::vector<double>) are positionally matched to this list.
class AggregatorList {
 public:
  /// Resolves column references; fails on unknown or non-numeric columns.
  static Result<AggregatorList> Create(std::vector<AggSpec> specs,
                                       const table::Schema& schema);

  int size() const { return static_cast<int>(specs_.size()); }
  const std::vector<AggSpec>& specs() const { return specs_; }

  /// Position of `spec` in the list, or NotFound.
  Result<int> IndexOf(const AggSpec& spec) const;

  /// Identity header (the value of an empty record set).
  std::vector<double> Identity() const;

  /// Folds one row into `header`.
  void Update(std::vector<double>* header, const table::Row& row) const;

  /// Merges `delta` into `acc` (both must have size() entries).
  void Merge(std::vector<double>* acc, const std::vector<double>& delta) const;

  /// Serializes the spec list for index metadata.
  std::string Serialize() const;
  static Result<AggregatorList> Deserialize(std::string_view data,
                                            const table::Schema& schema);

 private:
  AggregatorList(std::vector<AggSpec> specs, std::vector<int> col_a,
                 std::vector<int> col_b)
      : specs_(std::move(specs)),
        col_a_(std::move(col_a)),
        col_b_(std::move(col_b)) {}

  std::vector<AggSpec> specs_;
  std::vector<int> col_a_;  // -1 when unused (count(*))
  std::vector<int> col_b_;
};

}  // namespace dgf::core

#endif  // DGF_DGF_AGGREGATORS_H_
