#ifndef DGF_DGF_PARTITIONED_DGF_H_
#define DGF_DGF_PARTITIONED_DGF_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "dgf/dgf_builder.h"
#include "dgf/dgf_index.h"
#include "table/partition.h"

namespace dgf::core {

/// One DGFIndex per partition of a Hive-partitioned table — the combination
/// the paper recommends: "partition is a good complement for index, because
/// an index can be created on the basis of each partition" (Section 2.2).
///
/// A lookup first prunes partitions with the predicate's conditions on the
/// partition columns (free, directory-level), then consults only the
/// surviving partitions' grid files and merges their results. Partition
/// columns should not be grid dimensions (pruning already handles them).
class PartitionedDgfIndex {
 public:
  /// Supplies one KV store per partition (keyed by partition directory).
  using StoreFactory =
      std::function<Result<std::shared_ptr<kv::KvStore>>(const std::string&)>;

  /// Builds an index for every current partition of `table`. `base` supplies
  /// the grid dimensions and precomputed aggregations; its data_dir is used
  /// as a prefix (per-partition slice files land under
  /// `<data_dir>/<partition fragments>`).
  static Result<std::unique_ptr<PartitionedDgfIndex>> Build(
      std::shared_ptr<fs::MiniDfs> dfs, const table::PartitionedTable& table,
      const DgfBuilder::Options& base, const StoreFactory& store_factory);

  struct LookupResult {
    DgfIndex::LookupResult merged;
    int64_t partitions_pruned = 0;
    int64_t partitions_consulted = 0;
  };

  /// Prunes partitions, consults surviving per-partition indexes, and merges
  /// their headers/slices. Semantics match DgfIndex::Lookup.
  Result<LookupResult> Lookup(const query::Predicate& pred, bool aggregation);

  bool CoversAggregations(const std::vector<AggSpec>& requested) const;

  int64_t num_partitions() const {
    return static_cast<int64_t>(partitions_.size());
  }
  Result<uint64_t> IndexSizeBytes() const;

  const table::Schema& schema() const { return schema_; }

 private:
  struct Partition {
    std::string dir;
    std::vector<table::Value> values;  // partition column values
    std::shared_ptr<kv::KvStore> store;
    std::unique_ptr<DgfIndex> index;
  };

  PartitionedDgfIndex(table::Schema schema,
                      std::vector<std::string> partition_columns)
      : schema_(std::move(schema)),
        partition_columns_(std::move(partition_columns)) {}

  table::Schema schema_;
  std::vector<std::string> partition_columns_;
  std::vector<Partition> partitions_;
};

}  // namespace dgf::core

#endif  // DGF_DGF_PARTITIONED_DGF_H_
