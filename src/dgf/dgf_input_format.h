#ifndef DGF_DGF_DGF_INPUT_FORMAT_H_
#define DGF_DGF_DGF_INPUT_FORMAT_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "dgf/gfu.h"
#include "fs/mini_dfs.h"
#include "fs/split.h"
#include "table/record_reader.h"
#include "table/schema.h"
#include "table/table.h"
#include "table/text_format.h"

namespace dgf::core {

/// One chosen split plus the Slices a map task must read from it — the
/// <split, slicesInSplit> pairs of the paper's Algorithm 4.
struct SlicedSplit {
  fs::FileSplit split;
  /// Slices assigned to this split, ordered by start offset. A Slice is
  /// assigned to the split containing its start; the reader follows a Slice
  /// across the split end when it straddles the boundary.
  std::vector<SliceLocation> slices;
};

/// Sorts `slices` per file by start offset and merges adjacent/overlapping
/// ranges into single read ranges, dropping zero-length entries. After
/// placement optimization the slices of a query box are contiguous, so a
/// boundary region collapses to a handful of long reads — one Pread instead
/// of one per GFU slice. Record alignment is preserved: merged ranges still
/// start and end at record boundaries.
std::vector<SliceLocation> CoalesceSlices(std::vector<SliceLocation> slices);

/// Split filter (Algorithm 4): enumerates the splits of the reorganized data
/// files, keeps only those containing the start of at least one query-related
/// Slice, and attaches each split's ordered Slice list. Slices are coalesced
/// (CoalesceSlices) before assignment.
Result<std::vector<SlicedSplit>> PlanSlicedSplits(
    const std::shared_ptr<fs::MiniDfs>& dfs,
    const std::vector<SliceLocation>& slices, uint64_t split_size = 0);

/// Opens a reader over one Slice. Slices are exact record-aligned byte
/// ranges: TextFile Slices start/end at line boundaries; RCFile Slices
/// consist of whole row groups (the builder forces a group boundary per GFU).
Result<std::unique_ptr<table::RecordReader>> OpenSliceReader(
    const std::shared_ptr<fs::MiniDfs>& dfs, const SliceLocation& slice,
    const table::Schema& schema,
    table::FileFormat format = table::FileFormat::kText);

/// Text reader over several record-aligned byte ranges ("parts") of one file,
/// served by a single buffered stream instead of one reader (and one Pread
/// sequence) per part. Small gaps between parts are read through in the same
/// chunk — cheaper than reopening at the next offset — while large gaps drop
/// the buffer and jump. Lines are parsed zero-copy out of the buffer.
///
/// Parts must be sorted by start offset and non-overlapping (the
/// CoalesceSlices postcondition), each starting and ending on a line
/// boundary.
class MergedSliceTextReader : public table::RecordReader {
 public:
  static Result<std::unique_ptr<MergedSliceTextReader>> Open(
      const std::shared_ptr<fs::MiniDfs>& dfs, const std::string& file,
      std::vector<SliceLocation> parts, table::Schema schema);

  Result<bool> Next(table::Row* row) override;
  uint64_t CurrentBlockOffset() const override { return line_start_; }
  uint64_t CurrentRowInBlock() const override { return 0; }
  uint64_t BytesRead() const override { return bytes_read_; }

  /// Positional jumps performed: one per part entered.
  uint64_t SeekCount() const { return seeks_; }

 private:
  MergedSliceTextReader(std::unique_ptr<fs::DfsReader> reader,
                        std::vector<SliceLocation> parts,
                        std::vector<uint64_t> run_end, table::Schema schema);

  /// Positions the stream at the start of the next part; false when no parts
  /// remain.
  bool AdvancePart();
  Status FillBuffer();
  Result<bool> NextLineView(std::string_view* line);

  std::unique_ptr<fs::DfsReader> reader_;
  std::vector<SliceLocation> parts_;
  /// run_end_[i]: furthest offset worth reading contiguously when inside
  /// parts_[i] (extends across gaps small enough to read through).
  std::vector<uint64_t> run_end_;
  table::Schema schema_;
  size_t next_part_ = 0;   // first part not yet entered
  uint64_t part_end_ = 0;  // exclusive end of the current part
  uint64_t fill_cap_ = 0;  // run_end_ of the current part
  std::string buffer_;
  size_t buffer_pos_ = 0;
  uint64_t file_pos_ = 0;  // file offset of buffer_[buffer_pos_]
  uint64_t line_start_ = 0;
  uint64_t bytes_read_ = 0;
  uint64_t seeks_ = 0;
  bool fill_exhausted_ = false;
  std::vector<std::string_view> fields_scratch_;
};

/// RecordReader that yields only the records inside its split's Slices,
/// skipping the margins between adjacent Slices (step 3 of the query path).
/// `SeekCount()` reports the number of positional jumps for cost accounting.
/// Text-format splits are served by one MergedSliceTextReader over all the
/// split's Slices; RCFile splits open one group reader per Slice.
class SliceRecordReader : public table::RecordReader {
 public:
  static Result<std::unique_ptr<SliceRecordReader>> Open(
      std::shared_ptr<fs::MiniDfs> dfs, const SlicedSplit& sliced,
      table::Schema schema,
      table::FileFormat format = table::FileFormat::kText);

  Result<bool> Next(table::Row* row) override;
  uint64_t CurrentBlockOffset() const override;
  uint64_t CurrentRowInBlock() const override { return 0; }
  uint64_t BytesRead() const override;

  uint64_t SeekCount() const;

 private:
  SliceRecordReader(std::shared_ptr<fs::MiniDfs> dfs, SlicedSplit sliced,
                    table::Schema schema, table::FileFormat format)
      : dfs_(std::move(dfs)),
        sliced_(std::move(sliced)),
        schema_(std::move(schema)),
        format_(format) {}

  Status AdvanceSlice();

  std::shared_ptr<fs::MiniDfs> dfs_;
  SlicedSplit sliced_;
  table::Schema schema_;
  table::FileFormat format_ = table::FileFormat::kText;
  size_t next_slice_ = 0;
  std::unique_ptr<table::RecordReader> current_;
  /// Set when current_ is a MergedSliceTextReader spanning every slice.
  MergedSliceTextReader* merged_ = nullptr;
  uint64_t finished_bytes_ = 0;
  uint64_t seeks_ = 0;
};

}  // namespace dgf::core

#endif  // DGF_DGF_DGF_INPUT_FORMAT_H_
