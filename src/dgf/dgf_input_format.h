#ifndef DGF_DGF_DGF_INPUT_FORMAT_H_
#define DGF_DGF_DGF_INPUT_FORMAT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "dgf/gfu.h"
#include "fs/mini_dfs.h"
#include "fs/split.h"
#include "table/record_reader.h"
#include "table/schema.h"
#include "table/table.h"
#include "table/text_format.h"

namespace dgf::core {

/// One chosen split plus the Slices a map task must read from it — the
/// <split, slicesInSplit> pairs of the paper's Algorithm 4.
struct SlicedSplit {
  fs::FileSplit split;
  /// Slices assigned to this split, ordered by start offset. A Slice is
  /// assigned to the split containing its start; the reader follows a Slice
  /// across the split end when it straddles the boundary.
  std::vector<SliceLocation> slices;
};

/// Split filter (Algorithm 4): enumerates the splits of the reorganized data
/// files, keeps only those containing the start of at least one query-related
/// Slice, and attaches each split's ordered Slice list.
Result<std::vector<SlicedSplit>> PlanSlicedSplits(
    const std::shared_ptr<fs::MiniDfs>& dfs,
    const std::vector<SliceLocation>& slices, uint64_t split_size = 0);

/// Opens a reader over one Slice. Slices are exact record-aligned byte
/// ranges: TextFile Slices start/end at line boundaries; RCFile Slices
/// consist of whole row groups (the builder forces a group boundary per GFU).
Result<std::unique_ptr<table::RecordReader>> OpenSliceReader(
    const std::shared_ptr<fs::MiniDfs>& dfs, const SliceLocation& slice,
    const table::Schema& schema,
    table::FileFormat format = table::FileFormat::kText);

/// RecordReader that yields only the records inside its split's Slices,
/// skipping the margins between adjacent Slices (step 3 of the query path).
/// `SeekCount()` reports the number of positional jumps for cost accounting.
class SliceRecordReader : public table::RecordReader {
 public:
  static Result<std::unique_ptr<SliceRecordReader>> Open(
      std::shared_ptr<fs::MiniDfs> dfs, const SlicedSplit& sliced,
      table::Schema schema,
      table::FileFormat format = table::FileFormat::kText);

  Result<bool> Next(table::Row* row) override;
  uint64_t CurrentBlockOffset() const override;
  uint64_t CurrentRowInBlock() const override { return 0; }
  uint64_t BytesRead() const override;

  uint64_t SeekCount() const { return seeks_; }

 private:
  SliceRecordReader(std::shared_ptr<fs::MiniDfs> dfs, SlicedSplit sliced,
                    table::Schema schema, table::FileFormat format)
      : dfs_(std::move(dfs)),
        sliced_(std::move(sliced)),
        schema_(std::move(schema)),
        format_(format) {}

  Status AdvanceSlice();

  std::shared_ptr<fs::MiniDfs> dfs_;
  SlicedSplit sliced_;
  table::Schema schema_;
  table::FileFormat format_ = table::FileFormat::kText;
  size_t next_slice_ = 0;
  std::unique_ptr<table::RecordReader> current_;
  uint64_t finished_bytes_ = 0;
  uint64_t seeks_ = 0;
};

}  // namespace dgf::core

#endif  // DGF_DGF_DGF_INPUT_FORMAT_H_
