#ifndef DGF_DGF_SPLITTING_POLICY_H_
#define DGF_DGF_SPLITTING_POLICY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "table/schema.h"
#include "table/value.h"

namespace dgf::core {

/// How one indexed dimension is cut into grid intervals.
///
/// The dimension's domain is divided into left-closed right-open intervals
/// [min + k*interval, min + (k+1)*interval); `k` is the *cell ordinal* used in
/// GFU keys. This is the paper's "standard" operation: standardizing a value
/// means snapping it to the lower bound of its interval. For date dimensions
/// the interval unit is days.
struct DimensionPolicy {
  std::string column;
  table::DataType type = table::DataType::kInt64;
  /// Lower bound of cell 0 (numeric; for dates, days since epoch).
  double min = 0;
  /// Interval width; must be > 0 (for int64/date dims, a whole number).
  double interval = 1;
};

/// The grid that defines a DGFIndex: one DimensionPolicy per indexed column.
///
/// Mirrors the paper's IDXPROPERTIES ('A'='1_3', 'B'='11_2', ...): each
/// dimension is declared as "<min>_<interval>".
class SplittingPolicy {
 public:
  SplittingPolicy() = default;

  /// Validates dimensions (known columns, positive intervals, integral
  /// intervals for integral types).
  static Result<SplittingPolicy> Create(std::vector<DimensionPolicy> dims,
                                        const table::Schema& schema);

  int num_dims() const { return static_cast<int>(dims_.size()); }
  const DimensionPolicy& dim(int i) const { return dims_[static_cast<size_t>(i)]; }
  const std::vector<DimensionPolicy>& dims() const { return dims_; }

  /// Index of the policy dimension covering `column`, or NotFound.
  Result<int> DimIndex(const std::string& column) const;

  /// Cell ordinal containing `value` on dimension `dim` (the "standard"
  /// operation). Values below `min` land in negative cells, which is legal.
  int64_t CellOf(int dim, const table::Value& value) const;

  /// Lower bound (inclusive) of `cell` on dimension `dim`.
  table::Value CellLowerBound(int dim, int64_t cell) const;
  /// Upper bound (exclusive) of `cell` on dimension `dim`.
  table::Value CellUpperBound(int dim, int64_t cell) const;

  /// Serialization for persisting the policy next to the index (so an index
  /// can be reopened without the CREATE statement).
  std::string Serialize() const;
  static Result<SplittingPolicy> Deserialize(std::string_view data);

  std::string ToString() const;

 private:
  explicit SplittingPolicy(std::vector<DimensionPolicy> dims)
      : dims_(std::move(dims)) {}

  std::vector<DimensionPolicy> dims_;
};

}  // namespace dgf::core

#endif  // DGF_DGF_SPLITTING_POLICY_H_
