#ifndef DGF_DGF_POLICY_ADVISOR_H_
#define DGF_DGF_POLICY_ADVISOR_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "dgf/splitting_policy.h"
#include "exec/cluster.h"
#include "query/predicate.h"
#include "table/schema.h"

namespace dgf::core {

/// Implements the paper's future work: "an algorithm to find the best
/// splitting policy for DGFIndex based on the distribution of the meter data
/// and the query history".
///
/// The advisor models the two opposing forces of interval choice:
///   * finer grids -> more GFUs -> more KV round trips per query and a
///     larger index, but a thinner boundary region to scan;
///   * coarser grids -> few KV reads but fat boundaries (and, for point
///     queries, whole-cell reads).
/// It searches a geometric ladder of interval candidates per dimension
/// (exhaustively for <= 3 dimensions, coordinate descent above) minimizing
/// the expected per-query cost over the supplied query history, subject to a
/// bound on the total number of grid cells.
class PolicyAdvisor {
 public:
  /// Summary statistics of one candidate dimension of the dataset.
  struct DimensionStats {
    std::string column;
    table::DataType type = table::DataType::kInt64;
    double min = 0;
    double max = 0;
    /// Estimated distinct values (bounds the useful grid resolution).
    double distinct = 1;
  };

  struct Options {
    /// Upper bound on total grid cells (index size budget).
    double max_cells = 1e6;
    /// Candidate intervals per dimension in the search ladder.
    int ladder_size = 12;
    /// Fraction of history queries answered from pre-aggregated headers
    /// (aggregation queries read only the boundary region).
    double aggregation_fraction = 1.0;
    /// Average serialized record size in bytes.
    double record_bytes = 120;
    /// Total records in the table.
    double total_records = 1e6;
    exec::ClusterConfig cluster;
  };

  struct Recommendation {
    std::vector<DimensionPolicy> dims;
    /// Expected simulated seconds per history query under the model.
    double expected_query_cost = 0;
    /// Expected number of GFUs the grid creates.
    double expected_cells = 0;
  };

  PolicyAdvisor(std::vector<DimensionStats> stats, Options options)
      : stats_(std::move(stats)), options_(options) {}

  /// Recommends interval sizes given the query history. Queries not
  /// constraining a dimension are treated as spanning its whole domain.
  Result<Recommendation> Recommend(
      const std::vector<query::Predicate>& history) const;

  /// Expected cost of one query under a concrete interval assignment
  /// (exposed for tests and the ablation bench).
  double QueryCost(const std::vector<double>& intervals,
                   const query::Predicate& pred) const;

 private:
  /// Width of `pred`'s range on dimension `d` (domain width if absent).
  double RangeWidth(int d, const query::Predicate& pred) const;

  std::vector<double> Ladder(int d) const;
  double TotalCells(const std::vector<double>& intervals) const;

  std::vector<DimensionStats> stats_;
  Options options_;
};

}  // namespace dgf::core

#endif  // DGF_DGF_POLICY_ADVISOR_H_
