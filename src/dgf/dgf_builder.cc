#include "dgf/dgf_builder.h"

#include <limits>
#include <mutex>

#include "common/logging.h"
#include "common/string_util.h"
#include "table/rc_format.h"
#include "table/text_format.h"

namespace dgf::core {
namespace {

/// Map side of Algorithm 1: standardize index dimensions -> GFUKey, emit the
/// record keyed by it.
class ReorganizeMapper : public exec::Mapper {
 public:
  ReorganizeMapper(std::shared_ptr<fs::MiniDfs> dfs, table::TableDesc input,
                   const SplittingPolicy* policy, std::vector<int> dim_fields)
      : dfs_(std::move(dfs)),
        input_(std::move(input)),
        policy_(policy),
        dim_fields_(std::move(dim_fields)) {}

  Status Map(const fs::FileSplit& split, exec::MapContext* ctx) override {
    DGF_ASSIGN_OR_RETURN(auto reader,
                         table::OpenSplitReader(dfs_, input_, split));
    table::Row row;
    GfuKey key;
    key.cells.resize(dim_fields_.size());
    for (;;) {
      DGF_ASSIGN_OR_RETURN(bool more, reader->Next(&row));
      if (!more) break;
      for (size_t d = 0; d < dim_fields_.size(); ++d) {
        key.cells[d] = policy_->CellOf(
            static_cast<int>(d), row[static_cast<size_t>(dim_fields_[d])]);
      }
      ctx->Emit(key.Encode(), table::FormatRowText(row));
      ctx->AddRecords(1);
    }
    ctx->AddBytesRead(reader->BytesRead());
    return Status::OK();
  }

 private:
  std::shared_ptr<fs::MiniDfs> dfs_;
  table::TableDesc input_;
  const SplittingPolicy* policy_;
  std::vector<int> dim_fields_;
};

/// Reduce side of Algorithm 2: write each key's records contiguously as a
/// Slice, pre-compute its header, and stage <GFUKey, GFUValue> into the
/// job-wide WriteBatch (published atomically by the caller). Each key is
/// reduced by exactly one reducer, so the shared batch sees no conflicting
/// entries; the mutex only orders the appends.
class ReorganizeReducer : public exec::Reducer {
 public:
  ReorganizeReducer(std::shared_ptr<fs::MiniDfs> dfs,
                    std::shared_ptr<kv::KvStore> store, table::Schema schema,
                    const AggregatorList* aggs, std::string output_path,
                    table::FileFormat format, kv::WriteBatch* out_batch,
                    std::mutex* out_mu)
      : dfs_(std::move(dfs)),
        store_(std::move(store)),
        schema_(std::move(schema)),
        aggs_(aggs),
        output_path_(std::move(output_path)),
        format_(format),
        out_batch_(out_batch),
        out_mu_(out_mu) {}

  Status Reduce(const std::string& key, const std::vector<std::string>& lines,
                exec::ReduceContext* ctx) override {
    if (writer_ == nullptr && rc_writer_ == nullptr) {
      if (format_ == table::FileFormat::kText) {
        DGF_ASSIGN_OR_RETURN(writer_, table::TextFileWriter::Create(
                                          dfs_, output_path_, schema_));
      } else {
        DGF_ASSIGN_OR_RETURN(rc_writer_, table::RcFileWriter::Create(
                                             dfs_, output_path_, schema_));
      }
    }
    const uint64_t start = Offset();
    std::vector<double> header = aggs_->Identity();
    for (const std::string& line : lines) {
      DGF_ASSIGN_OR_RETURN(table::Row row, table::ParseRowText(line, schema_));
      aggs_->Update(&header, row);
      if (writer_ != nullptr) {
        DGF_RETURN_IF_ERROR(writer_->AppendLine(line));
      } else {
        DGF_RETURN_IF_ERROR(rc_writer_->Append(row));
      }
    }
    // RCFile: end the row group exactly at the GFU boundary, so the Slice is
    // a run of whole groups.
    if (rc_writer_ != nullptr) DGF_RETURN_IF_ERROR(rc_writer_->Flush());
    const uint64_t end = Offset();

    GfuValue value;
    value.header = std::move(header);
    value.record_count = lines.size();
    value.slices.push_back(SliceLocation{output_path_, start, end});

    // Merge with a pre-existing committed entry (incremental Append
    // batches). The caller's mutation lock keeps the committed state stable
    // for the whole job, so reading it outside the publish is safe.
    auto existing = store_->Get(key);
    if (existing.ok()) {
      DGF_ASSIGN_OR_RETURN(GfuValue old_value, GfuValue::Decode(*existing));
      aggs_->Merge(&value.header, old_value.header);
      value.record_count += old_value.record_count;
      value.slices.insert(value.slices.end(), old_value.slices.begin(),
                          old_value.slices.end());
    } else if (!existing.status().IsNotFound()) {
      return existing.status();
    }
    {
      std::lock_guard<std::mutex> lock(*out_mu_);
      out_batch_->Put(key, value.Encode());
    }
    ctx->counters().Add("dgf.gfus.written", 1);
    ctx->counters().Add("dgf.slice.bytes",
                        static_cast<int64_t>(end - start));
    ctx->AddBytesWritten(end - start);
    return Status::OK();
  }

  Status Finish(exec::ReduceContext*) override {
    if (writer_ != nullptr) return writer_->Close();
    if (rc_writer_ != nullptr) return rc_writer_->Close();
    return Status::OK();
  }

 private:
  uint64_t Offset() const {
    return writer_ != nullptr ? writer_->Offset() : rc_writer_->Offset();
  }

  std::shared_ptr<fs::MiniDfs> dfs_;
  std::shared_ptr<kv::KvStore> store_;
  table::Schema schema_;
  const AggregatorList* aggs_;
  std::string output_path_;
  table::FileFormat format_;
  kv::WriteBatch* out_batch_;
  std::mutex* out_mu_;
  std::unique_ptr<table::TextFileWriter> writer_;
  std::unique_ptr<table::RcFileWriter> rc_writer_;
};

constexpr const char* kMetaBatchKey = "M:batch";

}  // namespace

Result<exec::JobResult> DgfBuilder::RunReorganization(
    const std::shared_ptr<fs::MiniDfs>& dfs,
    const std::shared_ptr<kv::KvStore>& store, const table::TableDesc& input,
    const table::Schema& schema, const SplittingPolicy& policy,
    const AggregatorList& aggs, const std::string& data_dir,
    table::FileFormat data_format, int batch_id, exec::JobRunner::Options job,
    uint64_t split_size, kv::WriteBatch* out_batch) {
  std::vector<int> dim_fields;
  for (const DimensionPolicy& dim : policy.dims()) {
    DGF_ASSIGN_OR_RETURN(int field, schema.FieldIndex(dim.column));
    dim_fields.push_back(field);
  }
  DGF_ASSIGN_OR_RETURN(auto splits,
                       table::GetTableSplits(dfs, input, split_size));
  if (job.num_reducers <= 0) job.num_reducers = 8;

  exec::JobRunner runner(job);
  std::mutex out_mu;
  DGF_ASSIGN_OR_RETURN(
      exec::JobResult result,
      runner.Run(
          splits,
          [&] {
            return std::make_unique<ReorganizeMapper>(dfs, input, &policy,
                                                      dim_fields);
          },
          [&](int reducer_id) {
            const std::string path =
                data_dir + "/" +
                StringPrintf("part-b%03d-r%05d.%s", batch_id, reducer_id,
                             data_format == table::FileFormat::kText ? "txt"
                                                                     : "rc");
            return std::make_unique<ReorganizeReducer>(dfs, store, schema,
                                                       &aggs, path,
                                                       data_format, out_batch,
                                                       &out_mu);
          }));
  DGF_RETURN_IF_ERROR(
      RefreshDimensionBounds(store, policy.num_dims(), out_batch));
  // Charge the key-value store round trips (one put per GFU touched); at
  // fine splitting policies this is a visible share of construction time.
  result.simulated_seconds +=
      static_cast<double>(result.counters.Get("dgf.gfus.written")) *
      job.cluster.kv_get_s / job.cluster.total_reduce_slots();
  return result;
}

Status DgfBuilder::RefreshDimensionBounds(
    const std::shared_ptr<kv::KvStore>& store, int num_dims,
    kv::WriteBatch* out_batch) {
  std::vector<int64_t> min_cell(static_cast<size_t>(num_dims),
                                std::numeric_limits<int64_t>::max());
  std::vector<int64_t> max_cell(static_cast<size_t>(num_dims),
                                std::numeric_limits<int64_t>::min());
  bool any = false;
  const auto fold = [&](std::string_view encoded) -> Status {
    DGF_ASSIGN_OR_RETURN(GfuKey key, GfuKey::Decode(encoded, num_dims));
    any = true;
    for (int d = 0; d < num_dims; ++d) {
      min_cell[static_cast<size_t>(d)] =
          std::min(min_cell[static_cast<size_t>(d)], key.cells[static_cast<size_t>(d)]);
      max_cell[static_cast<size_t>(d)] =
          std::max(max_cell[static_cast<size_t>(d)], key.cells[static_cast<size_t>(d)]);
    }
    return Status::OK();
  };
  // Committed entries first, then the staged-but-unpublished ones: bounds
  // must describe the state the batch will publish.
  auto it = store->NewIterator();
  const std::string prefix(1, kGfuKeyPrefix);
  for (it->Seek(prefix); it->Valid(); it->Next()) {
    if (it->key().empty() || it->key().front() != kGfuKeyPrefix) break;
    DGF_RETURN_IF_ERROR(fold(it->key()));
  }
  for (const kv::WriteBatch::Entry& entry : out_batch->entries()) {
    if (entry.is_delete || entry.key.empty() ||
        entry.key.front() != kGfuKeyPrefix) {
      continue;
    }
    DGF_RETURN_IF_ERROR(fold(entry.key));
  }
  if (!any) return Status::InvalidArgument("index is empty after build");
  for (int d = 0; d < num_dims; ++d) {
    out_batch->Put(kMetaDimMinPrefix + std::to_string(d),
                   std::to_string(min_cell[static_cast<size_t>(d)]));
    out_batch->Put(kMetaDimMaxPrefix + std::to_string(d),
                   std::to_string(max_cell[static_cast<size_t>(d)]));
  }
  return Status::OK();
}

Result<std::unique_ptr<DgfIndex>> DgfBuilder::Build(
    std::shared_ptr<fs::MiniDfs> dfs, std::shared_ptr<kv::KvStore> store,
    const table::TableDesc& base, const Options& options,
    exec::JobResult* job_result) {
  if (store->Get(kMetaPolicyKey).ok()) {
    return Status::AlreadyExists(
        "store already holds a DGFIndex (one DGFIndex per table)");
  }
  if (options.data_dir.empty() || options.data_dir.front() != '/') {
    return Status::InvalidArgument("data_dir must be absolute");
  }
  DGF_ASSIGN_OR_RETURN(SplittingPolicy policy,
                       SplittingPolicy::Create(options.dims, base.schema));
  std::vector<AggSpec> specs;
  for (const std::string& text : options.precompute) {
    DGF_ASSIGN_OR_RETURN(AggSpec spec, AggSpec::Parse(text));
    specs.push_back(std::move(spec));
  }
  DGF_ASSIGN_OR_RETURN(AggregatorList aggs,
                       AggregatorList::Create(std::move(specs), base.schema));

  kv::WriteBatch batch;
  DGF_ASSIGN_OR_RETURN(
      exec::JobResult result,
      RunReorganization(dfs, store, base, base.schema, policy, aggs,
                        options.data_dir, options.data_format, /*batch_id=*/0,
                        options.job, options.split_size, &batch));
  if (job_result != nullptr) *job_result = result;

  batch.Put(kMetaPolicyKey, policy.Serialize());
  batch.Put(kMetaAggsKey, aggs.Serialize());
  batch.Put(kMetaDataDirKey, options.data_dir);
  batch.Put(kMetaDataFormatKey,
            options.data_format == table::FileFormat::kText ? "text"
                                                            : "rcfile");
  batch.Put(kMetaBatchKey, "1");
  // One atomic publish: a reader of the store either sees no index at all or
  // the complete one (GFUs, bounds, and meta).
  DGF_RETURN_IF_ERROR(store->ApplyBatch(batch));
  return std::unique_ptr<DgfIndex>(new DgfIndex(
      std::move(dfs), std::move(store), base.schema, std::move(policy),
      std::move(aggs), options.data_dir, options.data_format));
}

Result<exec::JobResult> DgfBuilder::Append(DgfIndex* index,
                                           const table::TableDesc& batch,
                                           exec::JobRunner::Options job,
                                           uint64_t split_size) {
  // Serialize with other mutators (optimize, AddAggregation, other Appends):
  // the reducers' read-merge-stage cycle relies on the committed GFU state
  // holding still until our publish.
  std::unique_lock<std::mutex> mutation = index->AcquireMutationLock();

  const auto& store = index->store();
  int batch_id = 1;
  if (auto text = store->Get(kMetaBatchKey); text.ok()) {
    DGF_ASSIGN_OR_RETURN(int64_t parsed, ParseInt64(*text));
    batch_id = static_cast<int>(parsed);
  }
  kv::WriteBatch staged;
  std::shared_ptr<const AggregatorList> aggs = index->aggregators();
  DGF_ASSIGN_OR_RETURN(
      exec::JobResult result,
      RunReorganization(index->dfs(), store, batch, index->schema(),
                        index->policy(), *aggs, index->data_dir(),
                        index->data_format(), batch_id, job, split_size,
                        &staged));
  staged.Put(kMetaBatchKey, std::to_string(batch_id + 1));
  // Atomic publish: a concurrent query pinned before this line sees none of
  // the batch, one pinned after sees all of it.
  DGF_RETURN_IF_ERROR(store->ApplyBatch(staged));
  return result;
}

}  // namespace dgf::core
