#include "dgf/dgf_builder.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <mutex>
#include <span>
#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "common/stage_timer.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "table/rc_format.h"
#include "table/text_format.h"
#include "testing/crash_point.h"

namespace dgf::core {
namespace {

/// Per-GFU partial state one shard task accumulates over one input split:
/// the records (text form, input order) plus a thread-local partial header.
struct GfuShard {
  std::vector<double> header;
  uint64_t records = 0;
  uint64_t line_bytes = 0;
  std::vector<std::string> lines;
};

/// Everything one shard task extracts from its split. Shards are keyed by
/// split index, so the pipeline's output depends only on the split list —
/// never on how many threads ran the tasks or in what order they finished.
struct SplitShard {
  std::unordered_map<std::string, GfuShard> groups;  // encoded GfuKey -> partial
  /// `groups` entries sorted by key (pointers into the node-stable map),
  /// produced once at the end of the shard task. The merge phase and the
  /// slice writers consume every shard as a sorted run, so downstream work
  /// is linear merging instead of per-key map lookups.
  std::vector<const std::pair<const std::string, GfuShard>*> ordered;
  uint64_t bytes_read = 0;
  uint64_t records = 0;
  uint64_t emitted_bytes = 0;  // key+line bytes, the shuffle-cost analogue
};

/// Map side of Algorithm 1 as a shard task: standardize index dimensions ->
/// GFUKey and group the split's records per key with a partial header.
Status ShardSplit(const std::shared_ptr<fs::MiniDfs>& dfs,
                  const table::TableDesc& input, const fs::FileSplit& split,
                  const SplittingPolicy& policy,
                  const std::vector<int>& dim_fields,
                  const AggregatorList& aggs, SplitShard* shard) {
  DGF_ASSIGN_OR_RETURN(auto reader, table::OpenSplitReader(dfs, input, split));
  table::Row row;
  GfuKey key;
  key.cells.resize(dim_fields.size());
  std::string encoded;
  for (;;) {
    DGF_ASSIGN_OR_RETURN(bool more, reader->Next(&row));
    if (!more) break;
    for (size_t d = 0; d < dim_fields.size(); ++d) {
      key.cells[d] = policy.CellOf(static_cast<int>(d),
                                   row[static_cast<size_t>(dim_fields[d])]);
    }
    key.EncodeInto(&encoded);
    auto [it, inserted] = shard->groups.try_emplace(encoded);
    GfuShard& group = it->second;
    if (inserted) group.header = aggs.Identity();
    aggs.Update(&group.header, row);
    std::string line = table::FormatRowText(row);
    shard->emitted_bytes += encoded.size() + line.size();
    group.line_bytes += line.size();
    group.lines.push_back(std::move(line));
    ++group.records;
    ++shard->records;
  }
  shard->bytes_read = reader->BytesRead();
  shard->ordered.reserve(shard->groups.size());
  for (const auto& entry : shard->groups) shard->ordered.push_back(&entry);
  std::sort(shard->ordered.begin(), shard->ordered.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  return Status::OK();
}

/// Staged output of one slice-writer task, concatenated by the coordinator
/// in writer order so the final batch is identical for every thread count.
struct WriterOutput {
  kv::WriteBatch batch;
  uint64_t bytes_written = 0;
  int64_t gfus = 0;
};

/// Reduce side of Algorithm 2 as a writer task: write each key of the
/// partition [begin, end) contiguously as a Slice, merge the per-split
/// partial headers in split order, and stage <GFUKey, GFUValue>.
Status WriteSlicePartition(const std::shared_ptr<fs::MiniDfs>& dfs,
                           const table::Schema& schema,
                           const AggregatorList& aggs,
                           const std::string& path, table::FileFormat format,
                           const std::vector<std::string>& keys, size_t begin,
                           size_t end,
                           const std::vector<Result<std::string>>& existing,
                           const std::vector<SplitShard>& shards,
                           WriterOutput* out) {
  std::unique_ptr<table::TextFileWriter> writer;
  std::unique_ptr<table::RcFileWriter> rc_writer;
  if (format == table::FileFormat::kText) {
    DGF_ASSIGN_OR_RETURN(writer, table::TextFileWriter::Create(dfs, path, schema));
  } else {
    DGF_ASSIGN_OR_RETURN(rc_writer, table::RcFileWriter::Create(dfs, path, schema));
  }
  const auto offset = [&] {
    return writer != nullptr ? writer->Offset() : rc_writer->Offset();
  };
  out->batch.Reserve(end - begin);
  // One monotone cursor per shard: the partition's keys arrive in ascending
  // order, so locating every key in every shard is one linear merge over the
  // sorted runs instead of (keys x shards) map lookups.
  std::vector<size_t> cursor(shards.size(), 0);
  for (size_t s = 0; s < shards.size(); ++s) {
    const auto& run = shards[s].ordered;
    cursor[s] = static_cast<size_t>(
        std::lower_bound(run.begin(), run.end(), keys[begin],
                         [](const auto* e, const std::string& k) {
                           return e->first < k;
                         }) -
        run.begin());
  }
  for (size_t k = begin; k < end; ++k) {
    const std::string& key = keys[k];
    const uint64_t start = offset();
    GfuValue value;
    value.header = aggs.Identity();
    // Concatenate the key's records and fold the partial headers in split
    // order: the result is the same bytes and the same floating-point header
    // no matter how many threads sharded the input.
    for (size_t s = 0; s < shards.size(); ++s) {
      const auto& run = shards[s].ordered;
      size_t& at = cursor[s];
      while (at < run.size() && run[at]->first < key) ++at;
      if (at == run.size() || run[at]->first != key) continue;
      const GfuShard& group = run[at]->second;
      aggs.Merge(&value.header, group.header);
      value.record_count += group.records;
      for (const std::string& line : group.lines) {
        if (writer != nullptr) {
          DGF_RETURN_IF_ERROR(writer->AppendLine(line));
        } else {
          DGF_ASSIGN_OR_RETURN(table::Row row,
                               table::ParseRowText(line, schema));
          DGF_RETURN_IF_ERROR(rc_writer->Append(row));
        }
      }
    }
    // RCFile: end the row group exactly at the GFU boundary, so the Slice is
    // a run of whole groups.
    if (rc_writer != nullptr) DGF_RETURN_IF_ERROR(rc_writer->Flush());
    const uint64_t slice_end = offset();
    value.slices.push_back(SliceLocation{path, start, slice_end});

    // Merge with a pre-existing committed entry (incremental Append
    // batches). The caller's mutation lock keeps the committed state stable
    // for the whole pipeline, so the coordinator's pre-fetched reads are
    // consistent with the publish.
    const Result<std::string>& prior = existing[k];
    if (prior.ok()) {
      DGF_ASSIGN_OR_RETURN(GfuValue old_value, GfuValue::Decode(*prior));
      aggs.Merge(&value.header, old_value.header);
      value.record_count += old_value.record_count;
      value.slices.insert(value.slices.end(), old_value.slices.begin(),
                          old_value.slices.end());
    } else if (!prior.status().IsNotFound()) {
      return prior.status();
    }
    out->batch.Put(key, value.Encode());
    ++out->gfus;
    out->bytes_written += slice_end - start;
  }
  if (writer != nullptr) return writer->Close();
  return rc_writer->Close();
}

}  // namespace

Result<exec::JobResult> DgfBuilder::RunReorganization(
    const std::shared_ptr<fs::MiniDfs>& dfs,
    const std::shared_ptr<kv::KvStore>& store, const table::TableDesc& input,
    const table::Schema& schema, const SplittingPolicy& policy,
    const AggregatorList& aggs, const std::string& data_dir,
    table::FileFormat data_format, int batch_id, exec::JobRunner::Options job,
    uint64_t split_size, int build_threads, kv::WriteBatch* out_batch) {
  std::vector<int> dim_fields;
  for (const DimensionPolicy& dim : policy.dims()) {
    DGF_ASSIGN_OR_RETURN(int field, schema.FieldIndex(dim.column));
    dim_fields.push_back(field);
  }
  DGF_ASSIGN_OR_RETURN(auto splits,
                       table::GetTableSplits(dfs, input, split_size));
  if (job.num_reducers <= 0) job.num_reducers = 8;
  const int num_writers = job.num_reducers;
  int threads = build_threads > 0 ? build_threads : job.worker_threads;
  if (threads <= 0) threads = 1;

  Stopwatch wall;
  exec::JobResult result;
  result.num_map_tasks = static_cast<int>(splits.size());
  result.num_reduce_tasks = num_writers;
  StageTimes& stages = result.stage_seconds;

  // One pool serves every phase of the reorganization (shard, merge, slice
  // write); WaitIdle() is the phase barrier. Reusing it keeps thread spawns
  // off the per-flush cost of small append batches.
  ThreadPool pool(threads);

  // ---- Shard phase: one task per split, no shared mutable state. ----
  std::vector<SplitShard> shards(splits.size());
  std::vector<double> shard_seconds(splits.size(), 0.0);
  std::mutex error_mu;
  Status first_error;
  {
    ScopedStage stage(&stages, "shard");
    for (size_t i = 0; i < splits.size(); ++i) {
      pool.Submit([&, i] {
        Stopwatch task_watch;
        Status st = ShardSplit(dfs, input, splits[i], policy, dim_fields, aggs,
                               &shards[i]);
        shard_seconds[i] = task_watch.ElapsedSeconds();
        if (!st.ok()) {
          std::lock_guard<std::mutex> lock(error_mu);
          if (first_error.ok()) first_error = st;
        }
      });
    }
    pool.WaitIdle();
  }
  DGF_RETURN_IF_ERROR(first_error);
  DGF_CRASH_POINT("dgf.reorg.after_shard");
  result.local_task_seconds = shard_seconds;

  ScopedStage sim_stage(&stages, "sim_model");
  const exec::ClusterConfig& cluster = job.cluster;
  std::vector<double> map_costs;
  map_costs.reserve(shards.size());
  for (const SplitShard& shard : shards) {
    result.counters.Add(exec::kCounterMapInputBytes,
                        static_cast<int64_t>(shard.bytes_read));
    result.counters.Add(exec::kCounterMapInputRecords,
                        static_cast<int64_t>(shard.records));
    result.counters.Add(exec::kCounterMapOutputRecords,
                        static_cast<int64_t>(shard.records));
    // Under data_scale, one local task stands for the many 64 MB map tasks
    // the full-size deployment would have run over the same data.
    const double scaled_bytes =
        cluster.data_scale * static_cast<double>(shard.bytes_read);
    const double scaled_records =
        cluster.data_scale * static_cast<double>(shard.records);
    const auto virtual_tasks = static_cast<int64_t>(std::clamp(
        std::ceil(scaled_bytes / cluster.virtual_split_bytes), 1.0, 1.0e6));
    const double per_task =
        cluster.task_launch_overhead_s +
        scaled_bytes / virtual_tasks / (1e6 * cluster.scan_mb_per_s) +
        scaled_records / virtual_tasks * cluster.record_cpu_s;
    for (int64_t v = 0; v < virtual_tasks; ++v) map_costs.push_back(per_task);
  }
  result.simulated_map_seconds =
      exec::SimulateMakespan(map_costs, cluster.total_map_slots());
  sim_stage.Stop();

  // ---- Merge phase: sorted key union -> contiguous writer partitions. ----
  // Partitions are cut from the sorted key union balanced by record count, so
  // both the file a key lands in and the order within the file are functions
  // of the data alone ("byte-stable" across thread counts and vs. serial).
  //
  // The union itself is a range-partitioned parallel multiway merge over the
  // shards' sorted runs: pivot keys (sampled from the largest run) cut every
  // run into aligned ranges, each range merges on its own task, and the
  // per-range outputs concatenate in pivot order. The result — the sorted
  // union with per-key sums — is a function of the data alone, whatever the
  // pivots or the task schedule.
  struct KeyTotals {
    uint64_t records = 0;
    uint64_t bytes = 0;
  };
  std::vector<std::string> keys;
  std::vector<KeyTotals> totals;
  uint64_t total_records = 0;
  {
    ScopedStage stage(&stages, "merge");
    const auto key_at = [&](size_t s, size_t i) -> const std::string& {
      return shards[s].ordered[i]->first;
    };
    // Merges the aligned ranges [lo[s], hi[s]) of every shard into the
    // ascending key union with summed totals (linear min-scan; the shard
    // count is the split count, small by construction).
    const auto merge_ranges = [&](const std::vector<size_t>& lo,
                                  const std::vector<size_t>& hi) {
      std::vector<std::pair<std::string, KeyTotals>> out;
      std::vector<size_t> cur = lo;
      for (;;) {
        const std::string* min_key = nullptr;
        for (size_t s = 0; s < shards.size(); ++s) {
          if (cur[s] >= hi[s]) continue;
          const std::string& k = key_at(s, cur[s]);
          if (min_key == nullptr || k < *min_key) min_key = &k;
        }
        if (min_key == nullptr) break;
        KeyTotals t;
        for (size_t s = 0; s < shards.size(); ++s) {
          if (cur[s] >= hi[s] || key_at(s, cur[s]) != *min_key) continue;
          const GfuShard& group = shards[s].ordered[cur[s]]->second;
          t.records += group.records;
          t.bytes += min_key->size() * group.records + group.line_bytes;
          ++cur[s];
        }
        out.emplace_back(*min_key, t);
      }
      return out;
    };

    // Interior pivots from the largest run; fewer tasks than threads when
    // the data has fewer distinct keys.
    std::vector<std::string> pivots;
    if (threads > 1 && !shards.empty()) {
      size_t largest = 0;
      for (size_t s = 1; s < shards.size(); ++s) {
        if (shards[s].ordered.size() > shards[largest].ordered.size()) {
          largest = s;
        }
      }
      const auto& run = shards[largest].ordered;
      for (int t = 1; t < threads && !run.empty(); ++t) {
        const std::string& k =
            run[run.size() * static_cast<size_t>(t) /
                static_cast<size_t>(threads)]
                ->first;
        if (pivots.empty() || pivots.back() < k) pivots.push_back(k);
      }
    }
    const size_t ranges = pivots.size() + 1;
    // cuts[p][s]: start of range p in shard s; range p spans
    // [cuts[p][s], cuts[p+1][s]).
    std::vector<std::vector<size_t>> cuts(
        ranges + 1, std::vector<size_t>(shards.size(), 0));
    for (size_t s = 0; s < shards.size(); ++s) {
      const auto& run = shards[s].ordered;
      cuts[ranges][s] = run.size();
      for (size_t p = 1; p < ranges; ++p) {
        cuts[p][s] = static_cast<size_t>(
            std::lower_bound(run.begin(), run.end(), pivots[p - 1],
                             [](const auto* e, const std::string& k) {
                               return e->first < k;
                             }) -
            run.begin());
      }
    }
    std::vector<std::vector<std::pair<std::string, KeyTotals>>> merged(ranges);
    if (ranges == 1) {
      merged[0] = merge_ranges(cuts[0], cuts[1]);
    } else {
      for (size_t p = 0; p < ranges; ++p) {
        pool.Submit(
            [&, p] { merged[p] = merge_ranges(cuts[p], cuts[p + 1]); });
      }
      pool.WaitIdle();
    }
    size_t union_size = 0;
    for (const auto& part : merged) union_size += part.size();
    keys.reserve(union_size);
    totals.reserve(union_size);
    for (auto& part : merged) {
      for (auto& [key, t] : part) {
        keys.push_back(std::move(key));
        totals.push_back(t);
        total_records += t.records;
      }
    }
  }

  // A crashed earlier attempt of this batch may have left slice files behind
  // (written, never published — slices only become reachable through the
  // batch's KV publish). DFS files are write-once, so a retry must reclaim
  // the names; the files are unreferenced by every published epoch.
  {
    ScopedStage stage(&stages, "orphan_scan");
    const std::string orphan_prefix = StringPrintf("part-b%03d-", batch_id);
    for (const fs::FileStatus& file : dfs->ListFiles(data_dir + "/")) {
      const size_t slash = file.path.find_last_of('/');
      const std::string name = file.path.substr(slash + 1);
      if (name.rfind(orphan_prefix, 0) == 0) {
        DGF_RETURN_IF_ERROR(dfs->Delete(file.path));
      }
    }
  }

  std::vector<double> writer_seconds(static_cast<size_t>(num_writers), 0.0);
  std::vector<uint64_t> partition_bytes(static_cast<size_t>(num_writers), 0);
  std::vector<WriterOutput> outputs(static_cast<size_t>(num_writers));
  if (!keys.empty()) {
    // One batched probe fetches every committed entry the writers will merge
    // with (the HBase multi-get analogue of the old per-key reducer Get).
    ScopedStage probe_stage(&stages, "kv_probe");
    const std::vector<Result<std::string>> existing = store->MultiGet(keys);
    probe_stage.Stop();

    ScopedStage write_stage(&stages, "slice_write");
    std::vector<size_t> bounds(static_cast<size_t>(num_writers) + 1, 0);
    {
      uint64_t cum = 0;
      size_t k = 0;
      for (int w = 0; w < num_writers; ++w) {
        bounds[static_cast<size_t>(w)] = k;
        const uint64_t target =
            total_records * static_cast<uint64_t>(w + 1) /
            static_cast<uint64_t>(num_writers);
        while (k < keys.size() && cum < target) {
          cum += totals[k].records;
          ++k;
        }
      }
      bounds[static_cast<size_t>(num_writers)] = keys.size();
    }
    for (int w = 0; w < num_writers; ++w) {
      const size_t begin = bounds[static_cast<size_t>(w)];
      const size_t end = bounds[static_cast<size_t>(w) + 1];
      if (begin == end) continue;  // no file for an empty partition
      for (size_t k = begin; k < end; ++k) {
        partition_bytes[static_cast<size_t>(w)] += totals[k].bytes;
      }
      const std::string path =
          data_dir + "/" +
          StringPrintf("part-b%03d-r%05d.%s", batch_id, w,
                       data_format == table::FileFormat::kText ? "txt" : "rc");
      pool.Submit([&, w, begin, end, path] {
        Stopwatch task_watch;
        Status st =
            WriteSlicePartition(dfs, schema, aggs, path, data_format, keys,
                                begin, end, existing, shards,
                                &outputs[static_cast<size_t>(w)]);
        writer_seconds[static_cast<size_t>(w)] = task_watch.ElapsedSeconds();
        if (!st.ok()) {
          std::lock_guard<std::mutex> lock(error_mu);
          if (first_error.ok()) first_error = st;
        }
      });
    }
    pool.WaitIdle();
    DGF_RETURN_IF_ERROR(first_error);
  }
  DGF_CRASH_POINT("dgf.reorg.after_slices");

  // Concatenate the per-writer staged batches in writer order: one
  // deterministic batch regardless of task scheduling.
  ScopedStage reduce_sim_stage(&stages, "sim_model");
  std::vector<double> reduce_costs;
  reduce_costs.reserve(static_cast<size_t>(num_writers));
  for (int w = 0; w < num_writers; ++w) {
    WriterOutput& out = outputs[static_cast<size_t>(w)];
    out_batch->Append(out.batch);
    result.counters.Add("dgf.gfus.written", out.gfus);
    result.counters.Add("dgf.slice.bytes",
                        static_cast<int64_t>(out.bytes_written));
    result.counters.Add("dgf.batch.bytes",
                        static_cast<int64_t>(out.batch.ApproximateBytes()));
    // Like map tasks, a scaled-up writer stands for the many reducers the
    // full-size job would have configured.
    const double scaled_shuffle =
        cluster.data_scale *
        static_cast<double>(partition_bytes[static_cast<size_t>(w)]);
    const double scaled_written =
        cluster.data_scale * static_cast<double>(out.bytes_written);
    const auto virtual_tasks = static_cast<int64_t>(std::clamp(
        std::ceil((scaled_shuffle + scaled_written) /
                  cluster.virtual_split_bytes),
        1.0, 1.0e6));
    const double per_task =
        cluster.task_launch_overhead_s +
        scaled_shuffle / virtual_tasks / (1e6 * cluster.shuffle_mb_per_s) +
        scaled_written / virtual_tasks / (1e6 * cluster.scan_mb_per_s);
    for (int64_t v = 0; v < virtual_tasks; ++v) reduce_costs.push_back(per_task);
  }
  result.simulated_shuffle_reduce_seconds =
      exec::SimulateMakespan(reduce_costs, cluster.total_reduce_slots());
  result.local_task_seconds.insert(result.local_task_seconds.end(),
                                   writer_seconds.begin(),
                                   writer_seconds.end());
  reduce_sim_stage.Stop();

  {
    ScopedStage stage(&stages, "bounds");
    DGF_RETURN_IF_ERROR(
        RefreshDimensionBounds(store, policy.num_dims(), out_batch));
  }
  // Charge the key-value store round trips (one put per GFU touched); at
  // fine splitting policies this is a visible share of construction time.
  result.simulated_seconds =
      cluster.job_overhead_s + result.simulated_map_seconds +
      result.simulated_shuffle_reduce_seconds +
      static_cast<double>(result.counters.Get("dgf.gfus.written")) *
          cluster.kv_get_s / cluster.total_reduce_slots();
  result.wall_seconds = wall.ElapsedSeconds();
  return result;
}

Status DgfBuilder::RefreshDimensionBounds(
    const std::shared_ptr<kv::KvStore>& store, int num_dims,
    kv::WriteBatch* out_batch) {
  std::vector<int64_t> min_cell(static_cast<size_t>(num_dims),
                                std::numeric_limits<int64_t>::max());
  std::vector<int64_t> max_cell(static_cast<size_t>(num_dims),
                                std::numeric_limits<int64_t>::min());
  bool any = false;
  const auto fold = [&](std::string_view encoded) -> Status {
    DGF_ASSIGN_OR_RETURN(GfuKey key, GfuKey::Decode(encoded, num_dims));
    any = true;
    for (int d = 0; d < num_dims; ++d) {
      min_cell[static_cast<size_t>(d)] =
          std::min(min_cell[static_cast<size_t>(d)], key.cells[static_cast<size_t>(d)]);
      max_cell[static_cast<size_t>(d)] =
          std::max(max_cell[static_cast<size_t>(d)], key.cells[static_cast<size_t>(d)]);
    }
    return Status::OK();
  };
  // Committed bounds first, then the staged-but-unpublished entries: bounds
  // must describe the state the batch will publish. The committed side folds
  // from the stored per-dimension min/max instead of scanning every GFU key:
  // bounds only ever widen (GFU keys are never deleted — the optimizer
  // rewrites values in place, and bounds publish atomically with their
  // keys), so the stored extremes summarize the committed grid exactly.
  // This turns the per-append cost from O(total GFUs) into O(dims).
  bool have_stored = false;
  {
    const Result<std::string> probe =
        store->Get(std::string(kMetaDimMinPrefix) + "0");
    if (probe.ok()) {
      have_stored = true;
    } else if (!probe.status().IsNotFound()) {
      return probe.status();
    }
  }
  if (have_stored) {
    any = true;
    for (int d = 0; d < num_dims; ++d) {
      DGF_ASSIGN_OR_RETURN(std::string lo_text,
                           store->Get(kMetaDimMinPrefix + std::to_string(d)));
      DGF_ASSIGN_OR_RETURN(std::string hi_text,
                           store->Get(kMetaDimMaxPrefix + std::to_string(d)));
      DGF_ASSIGN_OR_RETURN(int64_t lo, ParseInt64(lo_text));
      DGF_ASSIGN_OR_RETURN(int64_t hi, ParseInt64(hi_text));
      min_cell[static_cast<size_t>(d)] =
          std::min(min_cell[static_cast<size_t>(d)], lo);
      max_cell[static_cast<size_t>(d)] =
          std::max(max_cell[static_cast<size_t>(d)], hi);
    }
  }
  for (const kv::WriteBatch::Entry& entry : out_batch->entries()) {
    if (entry.is_delete || entry.key.empty() ||
        entry.key.front() != kGfuKeyPrefix) {
      continue;
    }
    DGF_RETURN_IF_ERROR(fold(entry.key));
  }
  if (!any) return Status::InvalidArgument("index is empty after build");
  for (int d = 0; d < num_dims; ++d) {
    out_batch->Put(kMetaDimMinPrefix + std::to_string(d),
                   std::to_string(min_cell[static_cast<size_t>(d)]));
    out_batch->Put(kMetaDimMaxPrefix + std::to_string(d),
                   std::to_string(max_cell[static_cast<size_t>(d)]));
  }
  return Status::OK();
}

Result<std::unique_ptr<DgfIndex>> DgfBuilder::Build(
    std::shared_ptr<fs::MiniDfs> dfs, std::shared_ptr<kv::KvStore> store,
    const table::TableDesc& base, const Options& options,
    exec::JobResult* job_result) {
  if (store->Get(kMetaPolicyKey).ok()) {
    return Status::AlreadyExists(
        "store already holds a DGFIndex (one DGFIndex per table)");
  }
  if (options.data_dir.empty() || options.data_dir.front() != '/') {
    return Status::InvalidArgument("data_dir must be absolute");
  }
  DGF_ASSIGN_OR_RETURN(SplittingPolicy policy,
                       SplittingPolicy::Create(options.dims, base.schema));
  std::vector<AggSpec> specs;
  for (const std::string& text : options.precompute) {
    DGF_ASSIGN_OR_RETURN(AggSpec spec, AggSpec::Parse(text));
    specs.push_back(std::move(spec));
  }
  DGF_ASSIGN_OR_RETURN(AggregatorList aggs,
                       AggregatorList::Create(std::move(specs), base.schema));

  kv::WriteBatch batch;
  DGF_ASSIGN_OR_RETURN(
      exec::JobResult result,
      RunReorganization(dfs, store, base, base.schema, policy, aggs,
                        options.data_dir, options.data_format, /*batch_id=*/0,
                        options.job, options.split_size, options.build_threads,
                        &batch));

  batch.Put(kMetaPolicyKey, policy.Serialize());
  batch.Put(kMetaAggsKey, aggs.Serialize());
  batch.Put(kMetaDataDirKey, options.data_dir);
  batch.Put(kMetaDataFormatKey,
            options.data_format == table::FileFormat::kText ? "text"
                                                            : "rcfile");
  batch.Put(kMetaBatchKey, "1");
  DGF_CRASH_POINT("dgf.build.before_publish");
  // One atomic publish: a reader of the store either sees no index at all or
  // the complete one (GFUs, bounds, and meta).
  {
    ScopedStage stage(&result.stage_seconds, "publish");
    DGF_RETURN_IF_ERROR(store->ApplyBatch(batch));
  }
  if (job_result != nullptr) *job_result = result;
  return std::unique_ptr<DgfIndex>(new DgfIndex(
      std::move(dfs), std::move(store), base.schema, std::move(policy),
      std::move(aggs), options.data_dir, options.data_format));
}

Result<exec::JobResult> DgfBuilder::AppendStaged(
    DgfIndex* index, const table::TableDesc& batch, int batch_id,
    exec::JobRunner::Options job, uint64_t split_size, int build_threads,
    kv::WriteBatch* out_batch) {
  std::shared_ptr<const AggregatorList> aggs = index->aggregators();
  return RunReorganization(index->dfs(), index->store(), batch,
                           index->schema(), index->policy(), *aggs,
                           index->data_dir(), index->data_format(), batch_id,
                           job, split_size, build_threads, out_batch);
}

Result<exec::JobResult> DgfBuilder::Append(DgfIndex* index,
                                           const table::TableDesc& batch,
                                           exec::JobRunner::Options job,
                                           uint64_t split_size,
                                           int build_threads) {
  // Serialize with other mutators (optimize, AddAggregation, other Appends):
  // the writers' read-merge-stage cycle relies on the committed GFU state
  // holding still until our publish.
  std::unique_lock<std::mutex> mutation = index->AcquireMutationLock();
  DGF_CRASH_POINT("dgf.append.before_job");

  const auto& store = index->store();
  int batch_id = 1;
  if (auto text = store->Get(kMetaBatchKey); text.ok()) {
    DGF_ASSIGN_OR_RETURN(int64_t parsed, ParseInt64(*text));
    batch_id = static_cast<int>(parsed);
  }
  kv::WriteBatch staged;
  DGF_ASSIGN_OR_RETURN(exec::JobResult result,
                       AppendStaged(index, batch, batch_id, job, split_size,
                                    build_threads, &staged));
  staged.Put(kMetaBatchKey, std::to_string(batch_id + 1));
  DGF_CRASH_POINT("dgf.append.before_publish");
  // Atomic publish: a concurrent query pinned before this line sees none of
  // the batch, one pinned after sees all of it.
  {
    ScopedStage stage(&result.stage_seconds, "publish");
    DGF_RETURN_IF_ERROR(store->ApplyBatch(staged));
  }
  return result;
}

}  // namespace dgf::core
