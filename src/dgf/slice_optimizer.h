#ifndef DGF_DGF_SLICE_OPTIMIZER_H_
#define DGF_DGF_SLICE_OPTIMIZER_H_

#include <cstdint>

#include "common/result.h"
#include "dgf/dgf_index.h"

namespace dgf::core {

/// Slice placement optimization — the paper's second future-work item ("the
/// optimal placement of Slices will also be our next step research problem").
///
/// Incremental appends fragment GFUs across batch files: a cube touched by
/// every batch accumulates one Slice per batch, and query-adjacent cubes end
/// up scattered over files, each costing a seek. `Optimize` rewrites the
/// reorganized data in GFU-key (row-major grid) order:
///   * every GFU's Slices merge into a single Slice;
///   * Slices of adjacent cubes become physically contiguous, so a query
///     box's reads coalesce into a few long sequential ranges (the sliced
///     input format merges adjacent Slices);
///   * stale batch files are retired — deleted once every query snapshot
///     pinned before the rewrite published has been released.
/// The KV entries flip to the new layout in one atomic batch; the index
/// remains queryable throughout (concurrent queries keep scanning the old
/// files their snapshot references until they finish).
class SliceOptimizer {
 public:
  struct Stats {
    uint64_t gfus = 0;
    uint64_t slices_before = 0;
    uint64_t slices_after = 0;
    uint64_t bytes_rewritten = 0;
    uint64_t files_before = 0;
    uint64_t files_after = 0;
  };

  /// Rewrites `index`'s data files; output files rotate at
  /// `target_file_bytes`. With `threads` > 1 the output files are rewritten
  /// by a worker pool, one task per file: the entry->file assignment is cut
  /// deterministically from the key-ordered entry list before any writing
  /// starts, so the rewritten layout is identical for every thread count.
  static Result<Stats> Optimize(DgfIndex* index,
                                uint64_t target_file_bytes = 256ULL << 20,
                                int threads = 1);
};

}  // namespace dgf::core

#endif  // DGF_DGF_SLICE_OPTIMIZER_H_
