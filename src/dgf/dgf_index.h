#ifndef DGF_DGF_DGF_INDEX_H_
#define DGF_DGF_DGF_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/lru_cache.h"
#include "common/result.h"
#include "dgf/aggregators.h"
#include "dgf/gfu.h"
#include "dgf/splitting_policy.h"
#include "fs/mini_dfs.h"
#include "kv/kv_store.h"
#include "query/predicate.h"
#include "table/schema.h"
#include "table/table.h"

namespace dgf::core {

/// The Distributed Grid File Index.
///
/// An open handle over (a) the key-value store holding GFUKey -> GFUValue
/// pairs and per-dimension metadata, and (b) the reorganized table data
/// (Slices) under `data_dir` on the DFS. Instances are created by
/// `DgfBuilder::Build` (which reorganizes the base table) or reopened with
/// `Open` from persisted metadata.
///
/// Query-side entry point is `Lookup`, which implements the paper's
/// Algorithm 3: decompose the query box into inner GFUs (answered from
/// pre-computed headers) and boundary GFUs (whose Slices must be scanned).
class DgfIndex {
 public:
  /// Reopens an index whose metadata lives in `store` for a base table with
  /// `schema` (reorganized data keeps the base schema).
  static Result<std::unique_ptr<DgfIndex>> Open(
      std::shared_ptr<fs::MiniDfs> dfs, std::shared_ptr<kv::KvStore> store,
      table::Schema schema);

  /// Result of consulting the index for one predicate.
  struct LookupResult {
    /// True when the query was answered on the aggregation path (inner GFUs
    /// contributed headers instead of slices).
    bool aggregation_path = false;
    /// Merged header of all inner GFUs (AggregatorList order); identity when
    /// no inner GFU exists.
    std::vector<double> inner_header;
    /// Records covered by the inner region (already aggregated).
    uint64_t inner_records = 0;
    /// Slices that must be scanned (boundary region; for non-aggregation
    /// lookups the whole query region).
    std::vector<SliceLocation> slices;
    /// Number of GFU cells classified each way (empty cells included).
    uint64_t inner_gfus = 0;
    uint64_t boundary_gfus = 0;
    /// KV point round trips performed; benches charge kv_get_s per entry.
    uint64_t kv_gets = 0;
    /// Entries streamed through a KV range scan (large query boxes switch
    /// from per-cell gets to one HBase-style scanner over the box's key
    /// range); benches charge kv_scan_entry_s per entry.
    uint64_t kv_scan_entries = 0;
    /// Decoded-GFU / meta cache outcomes for this lookup. A hit skips both
    /// the KV round trip and the value decode.
    uint64_t cache_hits = 0;
    uint64_t cache_misses = 0;
  };

  /// Consults the index. If `aggregation` is true the caller intends to
  /// compute only aggregations that are all precomputed in this index
  /// (verify with `CoversAggregations`); inner GFUs then contribute headers.
  /// Dimensions absent from `pred` are completed with the stored min/max
  /// (the paper's partial-specified query handling). Predicate conditions on
  /// non-indexed columns are ignored here (the scan re-applies them).
  Result<LookupResult> Lookup(const query::Predicate& pred, bool aggregation);

  /// True if every requested aggregation is precomputed.
  bool CoversAggregations(const std::vector<AggSpec>& requested) const;

  /// Extends the index with a newly precomputed aggregation by scanning each
  /// GFU's slices once and rewriting headers — the paper's "users can still
  /// add more UDFs dynamically to DGFIndex on demand".
  Status AddAggregation(const AggSpec& spec);

  /// Drops every cached decoded GFU and meta cell. Must be called after any
  /// mutation of the underlying store (AddAggregation does it itself;
  /// DgfBuilder::Append and SliceOptimizer rebuilds call it on their index).
  void InvalidateCache();

  const SplittingPolicy& policy() const { return policy_; }
  const AggregatorList& aggregators() const { return aggs_; }
  const std::string& data_dir() const { return data_dir_; }
  /// Storage format of the reorganized Slice files (TextFile by default;
  /// the builder can also lay Slices out as whole RCFile row groups).
  table::FileFormat data_format() const { return data_format_; }
  const table::Schema& schema() const { return schema_; }
  const std::shared_ptr<kv::KvStore>& store() const { return store_; }
  const std::shared_ptr<fs::MiniDfs>& dfs() const { return dfs_; }

  /// Table descriptor for the reorganized data (TextFile, base schema).
  table::TableDesc DataDesc() const;

  /// Live size of the index (GFU pairs + metadata) in the KV store.
  Result<uint64_t> IndexSizeBytes() const { return store_->ApproximateSizeBytes(); }
  /// Number of GFU entries.
  Result<uint64_t> NumGfus() const;

  /// Point fetch of one GFU (tests / tooling).
  Result<GfuValue> GetGfu(const GfuKey& key) const;

 private:
  friend class DgfBuilder;

  DgfIndex(std::shared_ptr<fs::MiniDfs> dfs, std::shared_ptr<kv::KvStore> store,
           table::Schema schema, SplittingPolicy policy, AggregatorList aggs,
           std::string data_dir, table::FileFormat data_format)
      : dfs_(std::move(dfs)),
        store_(std::move(store)),
        schema_(std::move(schema)),
        policy_(std::move(policy)),
        aggs_(std::move(aggs)),
        data_dir_(std::move(data_dir)),
        data_format_(data_format) {}

  /// Effective closed cell range of `dim` under `pred`, falling back to the
  /// stored min/max cells; `kv_gets` is incremented for metadata fetches.
  /// Returns an empty optional when the range is empty (no matching cell).
  struct CellRange {
    int64_t lo = 0;
    int64_t hi = -1;  // inclusive; lo > hi encodes empty
    int64_t inner_lo = 0;
    int64_t inner_hi = -1;
    bool empty() const { return lo > hi; }
    bool has_inner() const { return inner_lo <= inner_hi; }
  };
  Result<CellRange> DimCellRange(int dim, const query::Predicate& pred,
                                 LookupResult* counters) const;

  /// Cached metadata fetch; charges `counters` with a kv_get only on miss.
  Result<int64_t> MetaCell(const std::string& prefix, int dim,
                           LookupResult* counters) const;

  std::shared_ptr<fs::MiniDfs> dfs_;
  std::shared_ptr<kv::KvStore> store_;
  table::Schema schema_;
  SplittingPolicy policy_;
  AggregatorList aggs_;
  std::string data_dir_;
  table::FileFormat data_format_ = table::FileFormat::kText;
  // Decoded-value caches keyed by encoded KV key. GfuValues are cached behind
  // shared_ptr so a hit costs a pointer copy, not a slices-vector copy.
  mutable ShardedLruCache<std::shared_ptr<const GfuValue>> gfu_cache_;
  mutable ShardedLruCache<int64_t> meta_cache_{/*capacity=*/1024};
};

}  // namespace dgf::core

#endif  // DGF_DGF_DGF_INDEX_H_
