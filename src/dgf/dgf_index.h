#ifndef DGF_DGF_DGF_INDEX_H_
#define DGF_DGF_DGF_INDEX_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/lru_cache.h"
#include "common/result.h"
#include "dgf/aggregators.h"
#include "dgf/gfu.h"
#include "dgf/splitting_policy.h"
#include "fs/mini_dfs.h"
#include "kv/kv_store.h"
#include "query/predicate.h"
#include "table/schema.h"
#include "table/table.h"

namespace dgf::core {

class RetireGuard;

/// The Distributed Grid File Index.
///
/// An open handle over (a) the key-value store holding GFUKey -> GFUValue
/// pairs and per-dimension metadata, and (b) the reorganized table data
/// (Slices) under `data_dir` on the DFS. Instances are created by
/// `DgfBuilder::Build` (which reorganizes the base table) or reopened with
/// `Open` from persisted metadata.
///
/// Query-side entry point is `Lookup`, which implements the paper's
/// Algorithm 3: decompose the query box into inner GFUs (answered from
/// pre-computed headers) and boundary GFUs (whose Slices must be scanned).
///
/// Concurrency model — pinned snapshot + atomic publish:
///   * Readers call `Pin()` to capture an immutable Snapshot (KV snapshot +
///     epoch + aggregator list + retired-file guard) and run `Lookup` and the
///     subsequent slice scans entirely against it. A mutator publishing
///     mid-query can never produce a torn result: the query sees entirely
///     pre-publish or entirely post-publish state.
///   * Mutators (DgfBuilder::Append, SliceOptimizer, AddAggregation)
///     serialize on the mutation lock, stage every KV change in a WriteBatch,
///     and publish with one KvStore::ApplyBatch, which bumps the store
///     version (the epoch) atomically.
///   * The decoded-GFU/meta caches tag entries with the epoch they were read
///     at, so readers pinned at different epochs share one cache without
///     blanket invalidation.
///   * Files replaced by the slice optimizer are handed to RetireDataFiles,
///     which defers deletion until every snapshot that could reference them
///     is released.
class DgfIndex {
 public:
  /// Reopens an index whose metadata lives in `store` for a base table with
  /// `schema` (reorganized data keeps the base schema).
  static Result<std::unique_ptr<DgfIndex>> Open(
      std::shared_ptr<fs::MiniDfs> dfs, std::shared_ptr<kv::KvStore> store,
      table::Schema schema);

  /// Immutable view of the index pinned at one epoch. Copyable and cheap to
  /// hold; keeps the KV state, the aggregator list, and any data files that
  /// were live at pin time alive until released. Safe to use from the
  /// pinning thread or any worker it hands the snapshot to.
  struct Snapshot {
    std::shared_ptr<const kv::KvSnapshot> kv;
    std::shared_ptr<const AggregatorList> aggs;
    std::shared_ptr<RetireGuard> guard;
    uint64_t epoch = 0;
  };

  /// Pins the current index state. The order of capture (retire guard first,
  /// then KV snapshot) pairs with the publish order (ApplyBatch first, then
  /// guard swap) so a snapshot can never reference a data file whose guard
  /// it does not hold.
  Result<Snapshot> Pin() const;

  /// Result of consulting the index for one predicate.
  struct LookupResult {
    /// True when the query was answered on the aggregation path (inner GFUs
    /// contributed headers instead of slices).
    bool aggregation_path = false;
    /// Merged header of all inner GFUs (AggregatorList order); identity when
    /// no inner GFU exists.
    std::vector<double> inner_header;
    /// Records covered by the inner region (already aggregated).
    uint64_t inner_records = 0;
    /// Slices that must be scanned (boundary region; for non-aggregation
    /// lookups the whole query region).
    std::vector<SliceLocation> slices;
    /// Number of GFU cells classified each way (empty cells included).
    uint64_t inner_gfus = 0;
    uint64_t boundary_gfus = 0;
    /// KV point round trips performed; benches charge kv_get_s per entry.
    uint64_t kv_gets = 0;
    /// Entries streamed through a KV range scan (large query boxes switch
    /// from per-cell gets to one HBase-style scanner over the box's key
    /// range); benches charge kv_scan_entry_s per entry.
    uint64_t kv_scan_entries = 0;
    /// Decoded-GFU / meta cache outcomes for this lookup. A hit skips both
    /// the KV round trip and the value decode. These are per-lookup locals
    /// (each Lookup call owns its LookupResult); the process-wide totals are
    /// the atomic counters reported by cumulative_cache_hits()/misses().
    uint64_t cache_hits = 0;
    uint64_t cache_misses = 0;
  };

  /// Consults the index against a pinned snapshot. If `aggregation` is true
  /// the caller intends to compute only aggregations that are all
  /// precomputed in this index (verify with `CoversAggregations` on
  /// `snap.aggs`); inner GFUs then contribute headers. Dimensions absent
  /// from `pred` are completed with the stored min/max (the paper's
  /// partial-specified query handling). Predicate conditions on non-indexed
  /// columns are ignored here (the scan re-applies them).
  Result<LookupResult> Lookup(const Snapshot& snap,
                              const query::Predicate& pred,
                              bool aggregation) const;

  /// Convenience overload: pins a fresh snapshot for the single call.
  Result<LookupResult> Lookup(const query::Predicate& pred, bool aggregation);

  /// True if every requested aggregation is precomputed in `aggs`.
  static bool CoversAggregations(const AggregatorList& aggs,
                                 const std::vector<AggSpec>& requested);
  /// Same against the current (latest published) aggregator list.
  bool CoversAggregations(const std::vector<AggSpec>& requested) const;

  /// Extends the index with a newly precomputed aggregation by scanning each
  /// GFU's slices once and rewriting headers — the paper's "users can still
  /// add more UDFs dynamically to DGFIndex on demand". Serializes on the
  /// mutation lock and publishes all rewrites atomically.
  Status AddAggregation(const AggSpec& spec);

  /// Drops every cached decoded GFU and meta cell. With epoch-tagged cache
  /// entries this is a memory-hygiene hook, not a correctness requirement:
  /// stale entries age out when a newer-epoch reader touches them.
  void InvalidateCache();

  /// Serializes index mutations (Append / optimize / AddAggregation). Held
  /// for the full stage-and-publish span of a mutation; readers never take
  /// it.
  std::unique_lock<std::mutex> AcquireMutationLock() const {
    return std::unique_lock<std::mutex>(mutation_mu_);
  }

  /// Defers deletion of replaced data files until every snapshot pinned
  /// before this call is released. Called by the slice optimizer after it
  /// publishes GFU entries that no longer reference `files`.
  void RetireDataFiles(std::vector<std::string> files);

  const SplittingPolicy& policy() const { return policy_; }
  /// Latest published aggregator list. Concurrent readers should use the
  /// list captured in their Snapshot instead, which is consistent with the
  /// pinned KV state.
  std::shared_ptr<const AggregatorList> aggregators() const;
  const std::string& data_dir() const { return data_dir_; }
  /// Storage format of the reorganized Slice files (TextFile by default;
  /// the builder can also lay Slices out as whole RCFile row groups).
  table::FileFormat data_format() const { return data_format_; }
  const table::Schema& schema() const { return schema_; }
  const std::shared_ptr<kv::KvStore>& store() const { return store_; }
  const std::shared_ptr<fs::MiniDfs>& dfs() const { return dfs_; }

  /// Table descriptor for the reorganized data (TextFile, base schema).
  table::TableDesc DataDesc() const;

  /// Live size of the index (GFU pairs + metadata) in the KV store.
  Result<uint64_t> IndexSizeBytes() const { return store_->ApproximateSizeBytes(); }
  /// Number of GFU entries.
  Result<uint64_t> NumGfus() const;

  /// Point fetch of one GFU (tests / tooling).
  Result<GfuValue> GetGfu(const GfuKey& key) const;

  /// Process-wide decoded-GFU/meta cache totals across all lookups on this
  /// index. Maintained with relaxed atomic increments from concurrent
  /// readers and read with relaxed loads — reporting-only counters.
  uint64_t cumulative_cache_hits() const {
    return cumulative_cache_hits_.load(std::memory_order_relaxed);
  }
  uint64_t cumulative_cache_misses() const {
    return cumulative_cache_misses_.load(std::memory_order_relaxed);
  }

 private:
  friend class DgfBuilder;

  DgfIndex(std::shared_ptr<fs::MiniDfs> dfs, std::shared_ptr<kv::KvStore> store,
           table::Schema schema, SplittingPolicy policy, AggregatorList aggs,
           std::string data_dir, table::FileFormat data_format);

  /// Effective closed cell range of `dim` under `pred`, falling back to the
  /// stored min/max cells; `kv_gets` is incremented for metadata fetches.
  /// Returns an empty optional when the range is empty (no matching cell).
  struct CellRange {
    int64_t lo = 0;
    int64_t hi = -1;  // inclusive; lo > hi encodes empty
    int64_t inner_lo = 0;
    int64_t inner_hi = -1;
    bool empty() const { return lo > hi; }
    bool has_inner() const { return inner_lo <= inner_hi; }
  };
  Result<CellRange> DimCellRange(const Snapshot& snap, int dim,
                                 const query::Predicate& pred,
                                 LookupResult* counters) const;

  /// Cached metadata fetch; charges `counters` with a kv_get only on miss.
  Result<int64_t> MetaCell(const Snapshot& snap, const std::string& prefix,
                           int dim, LookupResult* counters) const;

  /// Swaps in a freshly published aggregator list (callers hold the mutation
  /// lock and have already published `serialized` under kMetaAggsKey).
  void SetAggs(std::shared_ptr<const AggregatorList> aggs,
               std::string serialized);

  std::shared_ptr<fs::MiniDfs> dfs_;
  std::shared_ptr<kv::KvStore> store_;
  table::Schema schema_;
  SplittingPolicy policy_;
  std::string data_dir_;
  table::FileFormat data_format_ = table::FileFormat::kText;

  /// Serializes mutators; see AcquireMutationLock.
  mutable std::mutex mutation_mu_;

  /// Latest published aggregator list plus its serialized form. Pin compares
  /// the pinned snapshot's kMetaAggsKey against `aggs_serialized_` to decide
  /// whether the cached list matches the snapshot (it deserializes from the
  /// snapshot when a publish raced in between). Guarded by aggs_mu_.
  mutable std::mutex aggs_mu_;
  std::shared_ptr<const AggregatorList> aggs_;
  std::string aggs_serialized_;

  /// Chain head for deferred data-file deletion; see RetireDataFiles.
  /// Guarded by guard_mu_.
  mutable std::mutex guard_mu_;
  mutable std::shared_ptr<RetireGuard> retire_guard_;

  // Decoded-value caches keyed by encoded KV key and tagged with the epoch
  // the value was read at. GfuValues are cached behind shared_ptr so a hit
  // costs a pointer copy, not a slices-vector copy.
  mutable ShardedLruCache<std::shared_ptr<const GfuValue>> gfu_cache_;
  mutable ShardedLruCache<int64_t> meta_cache_{/*capacity=*/1024};

  // Process-wide cache totals (reporting only; relaxed ordering).
  mutable std::atomic<uint64_t> cumulative_cache_hits_{0};
  mutable std::atomic<uint64_t> cumulative_cache_misses_{0};
};

}  // namespace dgf::core

#endif  // DGF_DGF_DGF_INDEX_H_
