#include "dgf/slice_optimizer.h"

#include <mutex>
#include <set>
#include <vector>

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "dgf/dgf_input_format.h"
#include "table/rc_format.h"
#include "table/text_format.h"

namespace dgf::core {

namespace {

constexpr const char* kMetaOptGenKey = "M:optgen";

/// One output file's share of the rewrite: the contiguous entry range
/// [begin, end) lands in `path`, in key order.
struct RewriteTask {
  size_t begin = 0;
  size_t end = 0;
  std::string path;
  uint64_t bytes_rewritten = 0;
};

/// Rewrites one output file. Each task owns a disjoint entry range, so
/// updating the entries' slice lists in place needs no synchronization.
Status RewriteFile(const std::shared_ptr<fs::MiniDfs>& dfs,
                   const table::Schema& schema, table::FileFormat format,
                   std::vector<std::pair<std::string, GfuValue>>* entries,
                   RewriteTask* task) {
  std::unique_ptr<table::TextFileWriter> writer;
  std::unique_ptr<table::RcFileWriter> rc_writer;
  if (format == table::FileFormat::kText) {
    DGF_ASSIGN_OR_RETURN(writer,
                         table::TextFileWriter::Create(dfs, task->path, schema));
  } else {
    DGF_ASSIGN_OR_RETURN(
        rc_writer, table::RcFileWriter::Create(dfs, task->path, schema));
  }
  const auto offset = [&] {
    return writer != nullptr ? writer->Offset() : rc_writer->Offset();
  };
  table::Row row;
  for (size_t i = task->begin; i < task->end; ++i) {
    GfuValue& value = (*entries)[i].second;
    const uint64_t start = offset();
    for (const SliceLocation& slice : value.slices) {
      DGF_ASSIGN_OR_RETURN(auto reader,
                           OpenSliceReader(dfs, slice, schema, format));
      for (;;) {
        DGF_ASSIGN_OR_RETURN(bool more, reader->Next(&row));
        if (!more) break;
        if (writer != nullptr) {
          DGF_RETURN_IF_ERROR(writer->Append(row));
        } else {
          DGF_RETURN_IF_ERROR(rc_writer->Append(row));
        }
      }
    }
    if (rc_writer != nullptr) DGF_RETURN_IF_ERROR(rc_writer->Flush());
    const uint64_t end = offset();
    task->bytes_rewritten += end - start;
    value.slices.clear();
    value.slices.push_back(SliceLocation{task->path, start, end});
  }
  if (writer != nullptr) return writer->Close();
  return rc_writer->Close();
}

}  // namespace

Result<SliceOptimizer::Stats> SliceOptimizer::Optimize(
    DgfIndex* index, uint64_t target_file_bytes, int threads) {
  // Serialize with Append/AddAggregation/other optimize runs: the rewrite
  // reads every committed GFU entry and must publish against that same
  // state. Readers keep querying their pinned snapshots throughout.
  std::unique_lock<std::mutex> mutation = index->AcquireMutationLock();

  const auto& dfs = index->dfs();
  const auto& store = index->store();
  Stats stats;

  int generation = 0;
  if (auto gen_text = store->Get(kMetaOptGenKey); gen_text.ok()) {
    DGF_ASSIGN_OR_RETURN(int64_t parsed, ParseInt64(*gen_text));
    generation = static_cast<int>(parsed);
  }

  // Snapshot the GFU entries in grid order (the iterator is already sorted
  // by the order-preserving key encoding).
  std::vector<std::pair<std::string, GfuValue>> entries;
  std::set<std::string> old_files;
  {
    auto it = store->NewIterator();
    const std::string prefix(1, kGfuKeyPrefix);
    for (it->Seek(prefix); it->Valid(); it->Next()) {
      if (it->key().empty() || it->key().front() != kGfuKeyPrefix) break;
      DGF_ASSIGN_OR_RETURN(GfuValue value, GfuValue::Decode(it->value()));
      stats.slices_before += value.slices.size();
      for (const auto& slice : value.slices) old_files.insert(slice.file);
      entries.emplace_back(std::string(it->key()), std::move(value));
    }
  }
  stats.gfus = entries.size();
  stats.files_before = old_files.size();
  if (entries.empty()) return stats;

  // Rewrite in key order, merging each GFU's slices into one. Either file
  // format is supported: text Slices are line runs, RC Slices whole groups.
  //
  // The entry->file assignment is cut up front from the key-ordered entry
  // list, rotating when the accumulated pre-rewrite slice bytes reach
  // `target_file_bytes`. That estimate stands in for the old "rotate once
  // the writer's offset crosses the target" rule and makes the assignment a
  // function of the committed state alone — which is what lets the files be
  // rewritten by independent parallel tasks with identical output.
  const table::FileFormat format = index->data_format();
  std::vector<RewriteTask> tasks;
  {
    uint64_t acc = 0;
    for (size_t i = 0; i < entries.size(); ++i) {
      if (i == 0 || acc >= target_file_bytes) {
        if (!tasks.empty()) tasks.back().end = i;
        RewriteTask task;
        task.begin = i;
        task.path =
            index->data_dir() + "/" +
            StringPrintf("part-opt%03d-%05d.%s", generation,
                         static_cast<int>(tasks.size()),
                         format == table::FileFormat::kText ? "txt" : "rc");
        tasks.push_back(std::move(task));
        acc = 0;
      }
      for (const SliceLocation& slice : entries[i].second.slices) {
        acc += slice.length();
      }
    }
    tasks.back().end = entries.size();
  }
  {
    ThreadPool pool(threads > 0 ? threads : 1);
    std::mutex error_mu;
    Status first_error;
    for (size_t t = 0; t < tasks.size(); ++t) {
      pool.Submit([&, t] {
        Status st =
            RewriteFile(dfs, index->schema(), format, &entries, &tasks[t]);
        if (!st.ok()) {
          std::lock_guard<std::mutex> lock(error_mu);
          if (first_error.ok()) first_error = st;
        }
      });
    }
    pool.WaitIdle();
    DGF_RETURN_IF_ERROR(first_error);
  }
  for (const RewriteTask& task : tasks) {
    stats.bytes_rewritten += task.bytes_rewritten;
  }
  stats.files_after = tasks.size();
  stats.slices_after = entries.size();

  // Atomic publish: every GFU entry flips to the new layout in one epoch
  // bump, so no query can see a mix of old and new slice lists.
  kv::WriteBatch batch;
  for (const auto& [key, value] : entries) {
    batch.Put(key, value.Encode());
  }
  batch.Put(kMetaOptGenKey, std::to_string(generation + 1));
  DGF_RETURN_IF_ERROR(store->ApplyBatch(batch));
  // Old files are retired, not deleted: snapshots pinned before the publish
  // may still scan them. The retire guard deletes each file once the last
  // such snapshot is released.
  index->RetireDataFiles(
      std::vector<std::string>(old_files.begin(), old_files.end()));
  // Memory hygiene: cached GfuValues for older epochs will never be served
  // to post-publish readers (epoch tags), but dropping them frees the slices
  // vectors early.
  index->InvalidateCache();
  return stats;
}

}  // namespace dgf::core
