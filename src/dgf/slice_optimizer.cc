#include "dgf/slice_optimizer.h"

#include <set>
#include <vector>

#include "common/string_util.h"
#include "dgf/dgf_input_format.h"
#include "table/rc_format.h"
#include "table/text_format.h"

namespace dgf::core {

namespace {
constexpr const char* kMetaOptGenKey = "M:optgen";
}  // namespace

Result<SliceOptimizer::Stats> SliceOptimizer::Optimize(
    DgfIndex* index, uint64_t target_file_bytes) {
  // Serialize with Append/AddAggregation/other optimize runs: the rewrite
  // reads every committed GFU entry and must publish against that same
  // state. Readers keep querying their pinned snapshots throughout.
  std::unique_lock<std::mutex> mutation = index->AcquireMutationLock();

  const auto& dfs = index->dfs();
  const auto& store = index->store();
  Stats stats;

  int generation = 0;
  if (auto gen_text = store->Get(kMetaOptGenKey); gen_text.ok()) {
    DGF_ASSIGN_OR_RETURN(int64_t parsed, ParseInt64(*gen_text));
    generation = static_cast<int>(parsed);
  }

  // Snapshot the GFU entries in grid order (the iterator is already sorted
  // by the order-preserving key encoding).
  std::vector<std::pair<std::string, GfuValue>> entries;
  std::set<std::string> old_files;
  {
    auto it = store->NewIterator();
    const std::string prefix(1, kGfuKeyPrefix);
    for (it->Seek(prefix); it->Valid(); it->Next()) {
      if (it->key().empty() || it->key().front() != kGfuKeyPrefix) break;
      DGF_ASSIGN_OR_RETURN(GfuValue value, GfuValue::Decode(it->value()));
      stats.slices_before += value.slices.size();
      for (const auto& slice : value.slices) old_files.insert(slice.file);
      entries.emplace_back(std::string(it->key()), std::move(value));
    }
  }
  stats.gfus = entries.size();
  stats.files_before = old_files.size();
  if (entries.empty()) return stats;

  // Rewrite in key order, merging each GFU's slices into one. Either file
  // format is supported: text Slices are line runs, RC Slices whole groups.
  const table::FileFormat format = index->data_format();
  std::vector<std::string> new_file_paths;
  int file_index = 0;
  std::unique_ptr<table::TextFileWriter> writer;
  std::unique_ptr<table::RcFileWriter> rc_writer;
  const auto current_offset = [&]() -> uint64_t {
    return writer != nullptr ? writer->Offset()
                             : (rc_writer != nullptr ? rc_writer->Offset() : 0);
  };
  const auto close_writer = [&]() -> Status {
    if (writer != nullptr) DGF_RETURN_IF_ERROR(writer->Close());
    if (rc_writer != nullptr) DGF_RETURN_IF_ERROR(rc_writer->Close());
    writer.reset();
    rc_writer.reset();
    return Status::OK();
  };
  const auto open_writer = [&]() -> Status {
    const std::string path =
        index->data_dir() + "/" +
        StringPrintf("part-opt%03d-%05d.%s", generation, file_index++,
                     format == table::FileFormat::kText ? "txt" : "rc");
    if (format == table::FileFormat::kText) {
      DGF_ASSIGN_OR_RETURN(
          writer, table::TextFileWriter::Create(dfs, path, index->schema()));
    } else {
      DGF_ASSIGN_OR_RETURN(
          rc_writer, table::RcFileWriter::Create(dfs, path, index->schema()));
    }
    ++stats.files_after;
    new_file_paths.push_back(path);
    return Status::OK();
  };
  for (auto& [key, value] : entries) {
    (void)key;
    if ((writer == nullptr && rc_writer == nullptr) ||
        current_offset() >= target_file_bytes) {
      DGF_RETURN_IF_ERROR(close_writer());
      DGF_RETURN_IF_ERROR(open_writer());
    }
    const uint64_t start = current_offset();
    table::Row row;
    for (const SliceLocation& slice : value.slices) {
      DGF_ASSIGN_OR_RETURN(
          auto reader, OpenSliceReader(dfs, slice, index->schema(), format));
      for (;;) {
        DGF_ASSIGN_OR_RETURN(bool more, reader->Next(&row));
        if (!more) break;
        if (writer != nullptr) {
          DGF_RETURN_IF_ERROR(writer->Append(row));
        } else {
          DGF_RETURN_IF_ERROR(rc_writer->Append(row));
        }
      }
    }
    if (rc_writer != nullptr) DGF_RETURN_IF_ERROR(rc_writer->Flush());
    const uint64_t end = current_offset();
    stats.bytes_rewritten += end - start;
    value.slices.clear();
    value.slices.push_back(
        SliceLocation{new_file_paths.back(), start, end});
    ++stats.slices_after;
  }
  DGF_RETURN_IF_ERROR(close_writer());

  // Atomic publish: every GFU entry flips to the new layout in one epoch
  // bump, so no query can see a mix of old and new slice lists.
  kv::WriteBatch batch;
  for (const auto& [key, value] : entries) {
    batch.Put(key, value.Encode());
  }
  batch.Put(kMetaOptGenKey, std::to_string(generation + 1));
  DGF_RETURN_IF_ERROR(store->ApplyBatch(batch));
  // Old files are retired, not deleted: snapshots pinned before the publish
  // may still scan them. The retire guard deletes each file once the last
  // such snapshot is released.
  index->RetireDataFiles(
      std::vector<std::string>(old_files.begin(), old_files.end()));
  // Memory hygiene: cached GfuValues for older epochs will never be served
  // to post-publish readers (epoch tags), but dropping them frees the slices
  // vectors early.
  index->InvalidateCache();
  return stats;
}

}  // namespace dgf::core
