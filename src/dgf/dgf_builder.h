#ifndef DGF_DGF_DGF_BUILDER_H_
#define DGF_DGF_DGF_BUILDER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "dgf/dgf_index.h"
#include "exec/mapreduce.h"
#include "table/table.h"

namespace dgf::core {

/// Builds and incrementally extends a DGFIndex.
///
/// `Build` is the paper's Algorithms 1+2 as a two-phase parallel pipeline:
/// shard tasks (one per input split) standardize every record to its GFUKey
/// and group the split's records per key with a thread-local partial header;
/// writer tasks then take contiguous ranges of the sorted key union, write
/// each key's records contiguously as a Slice into a reorganized data file
/// (merging partial headers in split order), and stage <GFUKey, GFUValue>
/// into the key-value store. Per-dimension min/max cells are stored as
/// metadata for partial-specified queries. The pipeline's output — slice
/// bytes, headers, and KV batch — is identical for every build_threads
/// value, including 1 (see Options::build_threads).
///
/// `Append` runs the same job over a batch of newly arrived data (the
/// verified temporary files of Section 4.2), writing fresh Slice files and
/// merging GFU entries — the index never needs a rebuild, so load throughput
/// is unaffected by its existence.
///
/// Both paths stage every KV change (GFU entries, dimension bounds, meta
/// keys) in one WriteBatch and publish it with a single KvStore::ApplyBatch,
/// so a query running concurrently with Append sees the whole batch or none
/// of it — never a partially ingested batch. Append serializes on the
/// index's mutation lock.
class DgfBuilder {
 public:
  struct Options {
    /// The grid (per-dimension min/interval). Column names must exist in the
    /// base table schema.
    std::vector<DimensionPolicy> dims;
    /// Pre-computed aggregations, e.g. {"sum(powerConsumed)"}; may be empty.
    std::vector<std::string> precompute;
    /// DFS directory receiving the reorganized Slice files.
    std::string data_dir;
    /// Storage format of the Slice files. TextFile matches the paper's
    /// implementation; kRcFile demonstrates the "easy to extend DGFIndex to
    /// support other file formats" claim: each Slice is a run of whole
    /// RCFile row groups (the reducer forces a group boundary per GFU).
    table::FileFormat data_format = table::FileFormat::kText;
    /// MiniMR settings; num_reducers defaults to 8 when left at 0 and sets
    /// the number of slice files (writer partitions) per batch.
    exec::JobRunner::Options job;
    /// Split size for reading the base table (0 = DFS block size).
    uint64_t split_size = 0;
    /// Local worker threads for the build pipeline (shard + slice-writer
    /// tasks). 0 = job.worker_threads. The output is result- and
    /// byte-equivalent for every value: sharding is per input split, writer
    /// partitions are cut from the sorted key union by record count, and all
    /// merges run in split order — none of which depends on scheduling.
    int build_threads = 0;
  };

  /// Reorganizes `base` into `options.data_dir` and fills `store` with the
  /// GFU pairs and metadata. `store` must not already contain an index.
  /// On success returns the open index; job statistics (construction time,
  /// bytes shuffled) are reported through `*job_result` when non-null.
  static Result<std::unique_ptr<DgfIndex>> Build(
      std::shared_ptr<fs::MiniDfs> dfs, std::shared_ptr<kv::KvStore> store,
      const table::TableDesc& base, const Options& options,
      exec::JobResult* job_result = nullptr);

  /// Ingests a new batch (same schema as the index's table) into `index`:
  /// new Slice files are appended and GFU entries merged. Typically the batch
  /// carries fresh values of the default time dimension, extending the grid.
  static Result<exec::JobResult> Append(DgfIndex* index,
                                        const table::TableDesc& batch,
                                        exec::JobRunner::Options job = {},
                                        uint64_t split_size = 0,
                                        int build_threads = 0);

  /// Like Append, but stages every KV change into `out_batch` instead of
  /// publishing: slice files land on the DFS (unreferenced until publish)
  /// and the caller applies the batch itself. The group-commit append
  /// pipeline uses this to fold several logical batches into one publish.
  /// Caller must hold the index's mutation lock.
  static Result<exec::JobResult> AppendStaged(DgfIndex* index,
                                              const table::TableDesc& batch,
                                              int batch_id,
                                              exec::JobRunner::Options job,
                                              uint64_t split_size,
                                              int build_threads,
                                              kv::WriteBatch* out_batch);

 private:
  /// Shared by Build and Append: run the reorganization pipeline for
  /// `batch_id`. Slice files are written to the DFS immediately (they are
  /// unreferenced until the batch publishes), while every KV change is staged
  /// into `out_batch`; the store is only read (for GFU merges with committed
  /// entries).
  static Result<exec::JobResult> RunReorganization(
      const std::shared_ptr<fs::MiniDfs>& dfs,
      const std::shared_ptr<kv::KvStore>& store, const table::TableDesc& input,
      const table::Schema& schema, const SplittingPolicy& policy,
      const AggregatorList& aggs, const std::string& data_dir,
      table::FileFormat data_format, int batch_id, exec::JobRunner::Options job,
      uint64_t split_size, int build_threads, kv::WriteBatch* out_batch);

  /// Recomputes per-dimension min/max cell metadata from the stored keys
  /// plus the staged-but-unpublished GFU entries of `out_batch`, appending
  /// the refreshed bounds to `out_batch`.
  static Status RefreshDimensionBounds(const std::shared_ptr<kv::KvStore>& store,
                                       int num_dims, kv::WriteBatch* out_batch);
};

}  // namespace dgf::core

#endif  // DGF_DGF_DGF_BUILDER_H_
