#include "hadoopdb/btree.h"

#include <algorithm>
#include <cassert>

namespace dgf::hadoopdb {

struct BTree::NodeBase {
  bool is_leaf = false;
  InnerNode* parent = nullptr;

  explicit NodeBase(bool leaf) : is_leaf(leaf) {}
  virtual ~NodeBase() = default;
};

struct BTree::InnerNode : NodeBase {
  InnerNode() : NodeBase(false) {}
  // children.size() == keys.size() + 1; child i holds keys < keys[i],
  // child i+1 holds keys >= keys[i].
  std::vector<std::string> keys;
  std::vector<NodeBase*> children;

  ~InnerNode() override {
    for (NodeBase* child : children) delete child;
  }

  int ChildIndex(std::string_view key) const {
    // First key > `key` determines the child to descend into (upper_bound
    // keeps equal keys to the right, matching the split invariant).
    auto it = std::upper_bound(keys.begin(), keys.end(), key,
                               [](std::string_view k, const std::string& sep) {
                                 return k < sep;
                               });
    return static_cast<int>(it - keys.begin());
  }
};

struct BTree::LeafNode : NodeBase {
  LeafNode() : NodeBase(true) {}
  std::vector<std::string> keys;
  std::vector<uint64_t> values;
  LeafNode* next = nullptr;

  int LowerBound(std::string_view key) const {
    auto it = std::lower_bound(keys.begin(), keys.end(), key,
                               [](const std::string& k, std::string_view t) {
                                 return std::string_view(k) < t;
                               });
    return static_cast<int>(it - keys.begin());
  }
};

BTree::BTree() { root_ = new LeafNode(); }

BTree::~BTree() { delete root_; }

BTree::LeafNode* BTree::FindLeaf(std::string_view key) const {
  NodeBase* node = root_;
  while (!node->is_leaf) {
    auto* inner = static_cast<InnerNode*>(node);
    node = inner->children[static_cast<size_t>(inner->ChildIndex(key))];
  }
  return static_cast<LeafNode*>(node);
}

namespace {

// Stored keys get an 8-byte big-endian row-id suffix, making every key
// unique: split separators then never fall inside a run of duplicates, which
// keeps range scans exact. The suffix is stripped when keys are read back.
std::string InternalKey(std::string_view key, uint64_t row_id) {
  std::string out(key);
  for (int shift = 56; shift >= 0; shift -= 8) {
    out.push_back(static_cast<char>((row_id >> shift) & 0xFF));
  }
  return out;
}

}  // namespace

void BTree::Insert(std::string_view key, uint64_t row_id) {
  const std::string internal = InternalKey(key, row_id);
  LeafNode* leaf = FindLeaf(internal);
  auto it = std::upper_bound(leaf->keys.begin(), leaf->keys.end(), internal);
  const auto pos = static_cast<size_t>(it - leaf->keys.begin());
  leaf->keys.insert(leaf->keys.begin() + static_cast<long>(pos), internal);
  leaf->values.insert(leaf->values.begin() + static_cast<long>(pos), row_id);
  ++size_;
  if (static_cast<int>(leaf->keys.size()) > kFanout) SplitLeaf(leaf);
}

void BTree::SplitLeaf(LeafNode* leaf) {
  auto* sibling = new LeafNode();
  const size_t mid = leaf->keys.size() / 2;
  sibling->keys.assign(leaf->keys.begin() + static_cast<long>(mid),
                       leaf->keys.end());
  sibling->values.assign(leaf->values.begin() + static_cast<long>(mid),
                         leaf->values.end());
  leaf->keys.resize(mid);
  leaf->values.resize(mid);
  sibling->next = leaf->next;
  leaf->next = sibling;
  InsertIntoParent(leaf, sibling->keys.front(), sibling);
}

void BTree::SplitInner(InnerNode* inner) {
  auto* sibling = new InnerNode();
  const size_t mid = inner->keys.size() / 2;
  std::string separator = inner->keys[mid];
  sibling->keys.assign(inner->keys.begin() + static_cast<long>(mid) + 1,
                       inner->keys.end());
  sibling->children.assign(inner->children.begin() + static_cast<long>(mid) + 1,
                           inner->children.end());
  for (NodeBase* child : sibling->children) child->parent = sibling;
  inner->keys.resize(mid);
  inner->children.resize(mid + 1);
  InsertIntoParent(inner, std::move(separator), sibling);
}

void BTree::InsertIntoParent(NodeBase* node, std::string separator,
                             NodeBase* new_node) {
  InnerNode* parent = node->parent;
  if (parent == nullptr) {
    auto* new_root = new InnerNode();
    new_root->keys.push_back(std::move(separator));
    new_root->children = {node, new_node};
    node->parent = new_root;
    new_node->parent = new_root;
    root_ = new_root;
    ++height_;
    return;
  }
  // Insert separator + new child right after `node`.
  const auto child_it =
      std::find(parent->children.begin(), parent->children.end(), node);
  assert(child_it != parent->children.end());
  const auto idx = static_cast<size_t>(child_it - parent->children.begin());
  parent->keys.insert(parent->keys.begin() + static_cast<long>(idx),
                      std::move(separator));
  parent->children.insert(parent->children.begin() + static_cast<long>(idx) + 1,
                          new_node);
  new_node->parent = parent;
  if (static_cast<int>(parent->keys.size()) > kFanout) SplitInner(parent);
}

std::string_view BTree::RangeIterator::key() const {
  std::string_view internal = leaf_->keys[static_cast<size_t>(pos_)];
  internal.remove_suffix(8);  // strip the row-id uniquifier
  return internal;
}

uint64_t BTree::RangeIterator::value() const {
  return leaf_->values[static_cast<size_t>(pos_)];
}

void BTree::RangeIterator::Next() {
  if (leaf_ == nullptr) return;
  ++pos_;
  if (pos_ >= static_cast<int>(leaf_->keys.size())) {
    leaf_ = leaf_->next;
    pos_ = 0;
    // Skip any empty leaves (possible only for the initial empty root).
    while (leaf_ != nullptr && leaf_->keys.empty()) leaf_ = leaf_->next;
  }
  if (leaf_ != nullptr && !upper_.empty() &&
      std::string_view(leaf_->keys[static_cast<size_t>(pos_)]) >= upper_) {
    leaf_ = nullptr;
  }
}

BTree::RangeIterator BTree::Range(std::string_view lower,
                                  std::string_view upper) const {
  RangeIterator it;
  it.upper_ = std::string(upper);
  LeafNode* leaf = FindLeaf(lower);
  int pos = leaf->LowerBound(lower);
  if (pos >= static_cast<int>(leaf->keys.size())) {
    leaf = leaf->next;
    pos = 0;
    while (leaf != nullptr && leaf->keys.empty()) leaf = leaf->next;
  }
  if (leaf == nullptr) return it;
  if (!upper.empty() &&
      std::string_view(leaf->keys[static_cast<size_t>(pos)]) >= upper) {
    return it;
  }
  it.leaf_ = leaf;
  it.pos_ = pos;
  return it;
}

uint64_t BTree::CountRange(std::string_view lower,
                           std::string_view upper) const {
  uint64_t count = 0;
  for (RangeIterator it = Range(lower, upper); it.Valid(); it.Next()) ++count;
  return count;
}

}  // namespace dgf::hadoopdb
