#include "hadoopdb/local_db.h"

#include <algorithm>

#include "common/encoding.h"

namespace dgf::hadoopdb {

using table::DataType;
using table::Row;
using table::Schema;
using table::Value;

namespace {

void EncodeValueOrdered(std::string* out, const Value& value) {
  if (value.is_double()) {
    PutOrderedDouble(out, value.dbl());
  } else if (value.is_string()) {
    out->append(value.str());
    out->push_back('\0');
  } else {
    PutOrderedInt64(out, value.int64());
  }
}

}  // namespace

Result<std::unique_ptr<LocalDb>> LocalDb::Create(
    Schema schema, std::vector<std::string> index_columns) {
  if (index_columns.empty()) {
    return Status::InvalidArgument("LocalDb needs at least one index column");
  }
  std::vector<int> fields;
  for (const std::string& column : index_columns) {
    DGF_ASSIGN_OR_RETURN(int field, schema.FieldIndex(column));
    fields.push_back(field);
  }
  return std::unique_ptr<LocalDb>(new LocalDb(
      std::move(schema), std::move(index_columns), std::move(fields)));
}

std::string LocalDb::EncodeKey(const Row& row) const {
  std::string key;
  for (int field : index_fields_) {
    EncodeValueOrdered(&key, row[static_cast<size_t>(field)]);
  }
  return key;
}

Status LocalDb::Insert(const Row& row, bool maintain_index) {
  if (static_cast<int>(row.size()) != schema_.num_fields()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  const auto row_id = static_cast<uint64_t>(rows_.size());
  rows_.push_back(row);
  heap_bytes_ += table::FormatRowText(row).size() + 1;
  if (maintain_index) {
    index_.Insert(EncodeKey(row), row_id);
  }
  return Status::OK();
}

void LocalDb::BuildIndex() {
  for (uint64_t id = 0; id < rows_.size(); ++id) {
    index_.Insert(EncodeKey(rows_[id]), id);
  }
}

Result<LocalDb::ExecStats> LocalDb::Execute(const query::Predicate& pred,
                                            std::vector<uint64_t>* out,
                                            double seq_scan_threshold) const {
  ExecStats stats;
  DGF_ASSIGN_OR_RETURN(query::BoundPredicate bound, pred.Bind(schema_));
  if (rows_.empty()) return stats;

  // Planner: can the leading index column bound a key range?
  const query::ColumnRange* leading = pred.FindColumn(index_columns_[0]);
  bool try_index = leading != nullptr &&
                   (leading->lower.has_value() || leading->upper.has_value());
  std::string lower_key, upper_key;
  if (try_index) {
    // Key range on the leading column only; trailing columns are filtered.
    if (leading->lower.has_value()) {
      EncodeValueOrdered(&lower_key, leading->lower->value);
      if (!leading->lower->inclusive && leading->lower->value.is_int64()) {
        lower_key.clear();
        EncodeValueOrdered(&lower_key,
                           Value::Int64(leading->lower->value.int64() + 1));
      }
    }
    if (leading->upper.has_value()) {
      if (leading->upper->value.is_double()) {
        EncodeValueOrdered(&upper_key, leading->upper->value);
        if (leading->upper->inclusive) {
          // Extend past all composite keys sharing this leading value.
          upper_key.append(8, '\xff');
        }
      } else {
        const int64_t hi = leading->upper->value.int64() +
                           (leading->upper->inclusive ? 1 : 0);
        EncodeValueOrdered(&upper_key, Value::Int64(hi));
      }
    }
    // Cost-based choice: estimate the selected fraction from the key range.
    const uint64_t in_range = index_.CountRange(lower_key, upper_key);
    const double fraction =
        static_cast<double>(in_range) / static_cast<double>(rows_.size());
    if (fraction > seq_scan_threshold) try_index = false;
  }

  const double avg_row_bytes =
      static_cast<double>(heap_bytes_) / static_cast<double>(rows_.size());
  if (try_index) {
    stats.used_index = true;
    for (auto it = index_.Range(lower_key, upper_key); it.Valid(); it.Next()) {
      ++stats.rows_examined;
      const Row& row = rows_[it.value()];
      if (bound.Matches(row)) {
        ++stats.rows_matched;
        out->push_back(it.value());
      }
    }
    stats.bytes_scanned =
        static_cast<uint64_t>(avg_row_bytes * stats.rows_examined);
    return stats;
  }

  for (uint64_t id = 0; id < rows_.size(); ++id) {
    ++stats.rows_examined;
    if (bound.Matches(rows_[id])) {
      ++stats.rows_matched;
      out->push_back(id);
    }
  }
  stats.bytes_scanned = heap_bytes_;
  return stats;
}

}  // namespace dgf::hadoopdb
