#ifndef DGF_HADOOPDB_HADOOPDB_H_
#define DGF_HADOOPDB_HADOOPDB_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "exec/cluster.h"
#include "fs/mini_dfs.h"
#include "hadoopdb/local_db.h"
#include "query/query.h"
#include "table/table.h"

namespace dgf::hadoopdb {

/// Configuration of the simulated HadoopDB deployment.
struct HadoopDbConfig {
  int num_nodes = 28;
  /// Chunks per node (paper: 38 x 1 GB via the LocalHasher).
  int chunks_per_node = 4;
  /// Columns of the per-chunk multi-column index; the first is also the
  /// GlobalHasher/LocalHasher partition key (paper: userId).
  std::vector<std::string> index_columns = {"userId", "regionId", "time"};
  /// Postgres batch-read bandwidth per node. All concurrent chunk scans of a
  /// node share this (disk contention). Hive map slots on the same node get
  /// scan_mb_per_s each, so HadoopDB's aggregate bandwidth ends up below
  /// Hive's — the paper's "low batch reading performance of RDBMS" plus
  /// "resources competition" observations.
  double db_scan_mb_per_s = 80.0;
  /// CPU cost per row examined inside the database.
  double db_row_cpu_s = 4.0e-7;
  /// Cost of one index-probe row fetch (random I/O flavoured).
  double index_row_fetch_s = 1.0e-5;
  exec::ClusterConfig cluster;
};

/// The HadoopDB baseline: hash-partitioned single-node databases under a
/// MapReduce coordination layer (Abouzeid et al., reimplemented at the
/// fidelity the comparison needs).
///
/// Loading runs GlobalHasher (row -> node by hash of the partition key) and
/// LocalHasher (row -> chunk within node); each chunk is a LocalDb with a
/// multi-column B-tree index. Queries are pushed into every chunk database
/// (the SMS-extended MapReduce job of the paper), and per-chunk work reports
/// are charged against a contention-aware cost model: one map task per
/// chunk, and all concurrently running chunk scans of a node share its
/// database bandwidth.
class HadoopDb {
 public:
  /// Partitions and bulk-loads `source` (reads it from the DFS).
  static Result<std::unique_ptr<HadoopDb>> Load(
      const std::shared_ptr<fs::MiniDfs>& dfs, const table::TableDesc& source,
      const HadoopDbConfig& config);

  /// Replicates a small archive table to every node (the paper puts the
  /// userInfo partition "to all the databases of current node").
  Status ReplicateArchive(const std::shared_ptr<fs::MiniDfs>& dfs,
                          const table::TableDesc& archive);

  struct QueryStats {
    uint64_t rows_examined = 0;
    uint64_t rows_matched = 0;
    uint64_t bytes_scanned = 0;
    int chunks_using_index = 0;
    int chunks_seq_scanned = 0;
    /// Simulated cluster seconds, split like the paper's bars.
    double db_seconds = 0.0;     // inside the chunk databases
    double mr_seconds = 0.0;     // MapReduce coordination (task waves, merge)
    double total_seconds = 0.0;
  };

  struct QueryOutput {
    table::Schema schema;
    std::vector<table::Row> rows;
    QueryStats stats;
  };

  /// Executes an aggregation / group-by / join query (the shapes of
  /// Listings 4-6). Join queries require ReplicateArchive first.
  Result<QueryOutput> Execute(const query::Query& query);

  int num_chunks() const {
    return config_.num_nodes * config_.chunks_per_node;
  }
  uint64_t total_rows() const { return total_rows_; }

 private:
  struct Node {
    std::vector<std::unique_ptr<LocalDb>> chunks;
    std::unique_ptr<LocalDb> archive;  // replicated small table
  };

  explicit HadoopDb(HadoopDbConfig config) : config_(std::move(config)) {}

  /// Charges the cost model for per-chunk work reports.
  QueryStats Charge(const std::vector<std::vector<LocalDb::ExecStats>>&
                        per_node_stats) const;

  HadoopDbConfig config_;
  table::Schema schema_;
  table::Schema archive_schema_;
  bool archive_schema_valid_ = false;
  std::vector<Node> nodes_;
  uint64_t total_rows_ = 0;
  int partition_field_ = 0;
};

}  // namespace dgf::hadoopdb

#endif  // DGF_HADOOPDB_HADOOPDB_H_
