#include "hadoopdb/hadoopdb.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "common/string_util.h"
#include "dgf/aggregators.h"

namespace dgf::hadoopdb {

using core::AggregatorList;
using core::AggSpec;
using table::DataType;
using table::Row;
using table::Schema;
using table::Value;

namespace {

uint64_t HashValue(const Value& value) {
  uint64_t x = value.is_string()
                   ? std::hash<std::string>{}(value.str())
                   : static_cast<uint64_t>(value.is_double()
                                               ? static_cast<int64_t>(value.dbl())
                                               : value.int64());
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

Result<std::unique_ptr<HadoopDb>> HadoopDb::Load(
    const std::shared_ptr<fs::MiniDfs>& dfs, const table::TableDesc& source,
    const HadoopDbConfig& config) {
  if (config.num_nodes <= 0 || config.chunks_per_node <= 0) {
    return Status::InvalidArgument("nodes and chunks must be positive");
  }
  std::unique_ptr<HadoopDb> db(new HadoopDb(config));
  db->schema_ = source.schema;
  DGF_ASSIGN_OR_RETURN(db->partition_field_,
                       source.schema.FieldIndex(config.index_columns[0]));
  db->nodes_.resize(static_cast<size_t>(config.num_nodes));
  for (auto& node : db->nodes_) {
    for (int c = 0; c < config.chunks_per_node; ++c) {
      DGF_ASSIGN_OR_RETURN(auto chunk,
                           LocalDb::Create(source.schema, config.index_columns));
      node.chunks.push_back(std::move(chunk));
    }
  }

  // GlobalHasher + LocalHasher: stream the source, bulk-insert, index after.
  DGF_ASSIGN_OR_RETURN(auto splits, table::GetTableSplits(dfs, source));
  for (const auto& split : splits) {
    DGF_ASSIGN_OR_RETURN(auto reader, table::OpenSplitReader(dfs, source, split));
    Row row;
    for (;;) {
      DGF_ASSIGN_OR_RETURN(bool more, reader->Next(&row));
      if (!more) break;
      const uint64_t h =
          HashValue(row[static_cast<size_t>(db->partition_field_)]);
      auto& node = db->nodes_[h % static_cast<uint64_t>(config.num_nodes)];
      auto& chunk =
          node.chunks[(h / static_cast<uint64_t>(config.num_nodes)) %
                      static_cast<uint64_t>(config.chunks_per_node)];
      DGF_RETURN_IF_ERROR(chunk->Insert(row, /*maintain_index=*/false));
      ++db->total_rows_;
    }
  }
  for (auto& node : db->nodes_) {
    for (auto& chunk : node.chunks) chunk->BuildIndex();
  }
  return db;
}

Status HadoopDb::ReplicateArchive(const std::shared_ptr<fs::MiniDfs>& dfs,
                                  const table::TableDesc& archive) {
  DGF_ASSIGN_OR_RETURN(auto splits, table::GetTableSplits(dfs, archive));
  std::vector<Row> rows;
  for (const auto& split : splits) {
    DGF_ASSIGN_OR_RETURN(auto reader, table::OpenSplitReader(dfs, archive, split));
    Row row;
    for (;;) {
      DGF_ASSIGN_OR_RETURN(bool more, reader->Next(&row));
      if (!more) break;
      rows.push_back(row);
    }
  }
  for (auto& node : nodes_) {
    DGF_ASSIGN_OR_RETURN(
        node.archive,
        LocalDb::Create(archive.schema, {archive.schema.field(0).name}));
    for (const Row& row : rows) {
      DGF_RETURN_IF_ERROR(node.archive->Insert(row));
    }
  }
  archive_schema_valid_ = true;
  archive_schema_ = archive.schema;
  return Status::OK();
}

HadoopDb::QueryStats HadoopDb::Charge(
    const std::vector<std::vector<LocalDb::ExecStats>>& per_node_stats) const {
  QueryStats stats;
  std::vector<double> node_times;
  std::vector<double> task_costs;  // MR view: one map task per chunk
  for (const auto& node_stats : per_node_stats) {
    double node_io_bytes = 0;
    double node_cpu = 0;
    for (const LocalDb::ExecStats& chunk : node_stats) {
      stats.rows_examined += chunk.rows_examined;
      stats.rows_matched += chunk.rows_matched;
      stats.bytes_scanned += chunk.bytes_scanned;
      const double scale = config_.cluster.data_scale;
      if (chunk.used_index) {
        ++stats.chunks_using_index;
        node_cpu += scale * static_cast<double>(chunk.rows_examined) *
                    config_.index_row_fetch_s;
      } else {
        ++stats.chunks_seq_scanned;
        node_io_bytes += scale * static_cast<double>(chunk.bytes_scanned);
        node_cpu += scale * static_cast<double>(chunk.rows_examined) *
                    config_.db_row_cpu_s;
      }
      task_costs.push_back(config_.cluster.task_launch_overhead_s);
    }
    // Disk contention: all chunk scans of this node share its DB bandwidth.
    node_times.push_back(node_io_bytes / (1e6 * config_.db_scan_mb_per_s) +
                         node_cpu);
  }
  stats.db_seconds =
      *std::max_element(node_times.begin(), node_times.end());
  stats.mr_seconds =
      config_.cluster.job_overhead_s +
      exec::SimulateMakespan(task_costs, config_.cluster.total_map_slots());
  stats.total_seconds = stats.db_seconds + stats.mr_seconds;
  return stats;
}

Result<HadoopDb::QueryOutput> HadoopDb::Execute(const query::Query& query) {
  const std::vector<AggSpec> requested = query.Aggregations();
  const bool is_group_by = query.group_by.has_value();
  const bool is_join = query.join.has_value();
  if (is_join && requested.empty() == false) {
    return Status::NotSupported("join with aggregation not implemented");
  }
  std::optional<AggregatorList> aggs;
  if (!requested.empty()) {
    DGF_ASSIGN_OR_RETURN(auto list, AggregatorList::Create(requested, schema_));
    aggs = std::move(list);
  }
  int group_field = -1;
  if (is_group_by) {
    DGF_ASSIGN_OR_RETURN(group_field, schema_.FieldIndex(*query.group_by));
  }
  int join_left_field = -1, join_right_field = -1;
  std::vector<std::pair<bool, int>> join_project;  // (from_right, field)
  if (is_join) {
    if (!archive_schema_valid_) {
      return Status::InvalidArgument("join requires ReplicateArchive first");
    }
    DGF_ASSIGN_OR_RETURN(join_left_field,
                         schema_.FieldIndex(query.join->left_column));
    DGF_ASSIGN_OR_RETURN(join_right_field,
                         archive_schema_.FieldIndex(query.join->right_column));
    for (const auto& item : query.select) {
      auto left = schema_.FieldIndex(item.column);
      if (left.ok()) {
        join_project.emplace_back(false, *left);
      } else {
        DGF_ASSIGN_OR_RETURN(int right, archive_schema_.FieldIndex(item.column));
        join_project.emplace_back(true, right);
      }
    }
  }

  QueryOutput output;
  std::vector<std::vector<LocalDb::ExecStats>> per_node_stats(nodes_.size());
  std::vector<double> global_acc;
  if (aggs.has_value()) global_acc = aggs->Identity();
  std::map<std::string, std::vector<double>> groups;

  for (size_t n = 0; n < nodes_.size(); ++n) {
    Node& node = nodes_[n];
    // Archive hash table for the join, built once per node.
    std::unordered_multimap<std::string, uint64_t> archive_index;
    if (is_join) {
      for (uint64_t id = 0; id < node.archive->num_rows(); ++id) {
        archive_index.emplace(
            node.archive->row(id)[static_cast<size_t>(join_right_field)].ToText(),
            id);
      }
    }
    for (auto& chunk : node.chunks) {
      std::vector<uint64_t> matches;
      DGF_ASSIGN_OR_RETURN(LocalDb::ExecStats chunk_stats,
                           chunk->Execute(query.where, &matches));
      per_node_stats[n].push_back(chunk_stats);
      for (uint64_t id : matches) {
        const Row& row = chunk->row(id);
        if (is_group_by) {
          const std::string key = row[static_cast<size_t>(group_field)].ToText();
          auto [it, inserted] = groups.try_emplace(key);
          if (inserted) it->second = aggs->Identity();
          aggs->Update(&it->second, row);
        } else if (aggs.has_value()) {
          aggs->Update(&global_acc, row);
        } else if (is_join) {
          const std::string key =
              row[static_cast<size_t>(join_left_field)].ToText();
          auto it = archive_index.find(key);
          if (it == archive_index.end()) continue;
          const Row& right = node.archive->row(it->second);
          Row out_row;
          for (const auto& [from_right, field] : join_project) {
            out_row.push_back(from_right ? right[static_cast<size_t>(field)]
                                         : row[static_cast<size_t>(field)]);
          }
          output.rows.push_back(std::move(out_row));
        } else {
          output.rows.push_back(row);
        }
      }
    }
  }

  // Assemble schema + aggregated rows.
  if (is_group_by) {
    const DataType group_type =
        schema_.field(group_field).type;
    std::vector<table::Field> fields = {{*query.group_by, group_type}};
    for (const AggSpec& spec : requested) {
      fields.push_back({spec.ToString(), DataType::kDouble});
    }
    output.schema = Schema(std::move(fields));
    for (const auto& [key, header] : groups) {
      DGF_ASSIGN_OR_RETURN(Value group_value,
                           table::ParseValue(key, group_type));
      Row row = {std::move(group_value)};
      for (double v : header) row.push_back(Value::Double(v));
      output.rows.push_back(std::move(row));
    }
  } else if (aggs.has_value()) {
    std::vector<table::Field> fields;
    Row row;
    for (size_t i = 0; i < requested.size(); ++i) {
      fields.push_back({requested[i].ToString(), DataType::kDouble});
      row.push_back(Value::Double(global_acc[i]));
    }
    output.schema = Schema(std::move(fields));
    output.rows.push_back(std::move(row));
  } else if (is_join) {
    std::vector<table::Field> fields;
    for (size_t i = 0; i < query.select.size(); ++i) {
      const auto& [from_right, field] = join_project[i];
      fields.push_back(
          {query.select[i].column,
           from_right ? archive_schema_.field(field).type
                      : schema_.field(field).type});
    }
    output.schema = Schema(std::move(fields));
  } else {
    output.schema = schema_;
  }
  output.stats = Charge(per_node_stats);
  return output;
}

}  // namespace dgf::hadoopdb
