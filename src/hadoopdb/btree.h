#ifndef DGF_HADOOPDB_BTREE_H_
#define DGF_HADOOPDB_BTREE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace dgf::hadoopdb {

/// In-memory B+ tree mapping byte-string keys to row ids.
///
/// The multi-column index of the per-node "PostgreSQL" in the HadoopDB
/// baseline: composite (userId, regionId, time) keys are encoded
/// order-preservingly and point at row ordinals in the chunk's row store.
/// Duplicate keys are allowed (a user has many readings).
///
/// Not thread-safe for writes; concurrent reads are safe after loading.
class BTree {
 private:
  struct NodeBase;
  struct InnerNode;
  struct LeafNode;

 public:
  static constexpr int kFanout = 64;

  BTree();
  ~BTree();

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  /// Inserts one (key, row id) pair. O(log n) with node splits — the real
  /// index-maintenance cost that ruins DBMS-X's write throughput (Figure 3).
  void Insert(std::string_view key, uint64_t row_id);

  uint64_t size() const { return size_; }
  int height() const { return height_; }

  /// Forward cursor over entries with key in [lower, upper).
  class RangeIterator {
   public:
    bool Valid() const { return leaf_ != nullptr; }
    std::string_view key() const;
    uint64_t value() const;
    void Next();

   private:
    friend class BTree;
    const LeafNode* leaf_ = nullptr;
    int pos_ = 0;
    std::string upper_;  // exclusive; empty = unbounded
  };

  /// Positions at the first entry with key >= lower; iteration stops at the
  /// first key >= upper (upper empty = unbounded).
  RangeIterator Range(std::string_view lower, std::string_view upper) const;

  /// Total entries with key in [lower, upper) — walks the range.
  uint64_t CountRange(std::string_view lower, std::string_view upper) const;

 private:
  /// Descends to the leaf that may contain `key`.
  LeafNode* FindLeaf(std::string_view key) const;

  /// Splits `leaf` (full) and updates parents; may grow the tree.
  void SplitLeaf(LeafNode* leaf);
  void SplitInner(InnerNode* inner);
  void InsertIntoParent(NodeBase* node, std::string separator,
                        NodeBase* new_node);

  NodeBase* root_ = nullptr;
  uint64_t size_ = 0;
  int height_ = 1;
};

}  // namespace dgf::hadoopdb

#endif  // DGF_HADOOPDB_BTREE_H_
