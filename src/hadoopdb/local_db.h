#ifndef DGF_HADOOPDB_LOCAL_DB_H_
#define DGF_HADOOPDB_LOCAL_DB_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "hadoopdb/btree.h"
#include "query/predicate.h"
#include "table/schema.h"

namespace dgf::hadoopdb {

/// One chunk database of the HadoopDB baseline — the stand-in for a
/// PostgreSQL instance holding a ~1 GB hash partition of the meter table,
/// with a multi-column B-tree index on the indexed columns.
///
/// Rows live in an in-memory heap; the index maps the encoded composite key
/// (index_columns, in order) to row ordinals. `Execute` mimics the Postgres
/// planner's choice between an index range scan on the leading column and a
/// sequential scan, and reports the work done so the engine can charge the
/// cluster cost model.
class LocalDb {
 public:
  /// `index_columns`: the multi-column index (paper: userId, regionId, time).
  static Result<std::unique_ptr<LocalDb>> Create(
      table::Schema schema, std::vector<std::string> index_columns);

  /// Inserts one row; when `maintain_index` is set the B-tree is updated
  /// inline (the write path measured in Figure 3).
  Status Insert(const table::Row& row, bool maintain_index = true);

  /// Builds the index over all inserted rows (bulk load path).
  void BuildIndex();

  uint64_t num_rows() const { return rows_.size(); }
  uint64_t heap_bytes() const { return heap_bytes_; }
  const table::Schema& schema() const { return schema_; }

  /// Work report of one chunk-local query.
  struct ExecStats {
    bool used_index = false;
    /// Rows fetched (via index probes or the sequential scan).
    uint64_t rows_examined = 0;
    uint64_t rows_matched = 0;
    /// Heap bytes touched (full heap for a seq scan, matched-row bytes for
    /// an index scan).
    uint64_t bytes_scanned = 0;
  };

  /// Evaluates `pred` and appends matching row ordinals to `*out`.
  /// Planner rule: if the predicate constrains the leading index column and
  /// the estimated selected fraction is below `seq_scan_threshold`, use an
  /// index range scan; otherwise scan sequentially.
  Result<ExecStats> Execute(const query::Predicate& pred,
                            std::vector<uint64_t>* out,
                            double seq_scan_threshold = 0.2) const;

  const table::Row& row(uint64_t id) const { return rows_[id]; }

 private:
  LocalDb(table::Schema schema, std::vector<std::string> index_columns,
          std::vector<int> index_fields)
      : schema_(std::move(schema)),
        index_columns_(std::move(index_columns)),
        index_fields_(std::move(index_fields)) {}

  std::string EncodeKey(const table::Row& row) const;

  table::Schema schema_;
  std::vector<std::string> index_columns_;
  std::vector<int> index_fields_;
  std::vector<table::Row> rows_;
  uint64_t heap_bytes_ = 0;
  BTree index_;
};

}  // namespace dgf::hadoopdb

#endif  // DGF_HADOOPDB_LOCAL_DB_H_
