// dgf_cli: command-line client for dgf_serverd.
//
//   dgf_cli [--port=N | --unix=PATH] query "SELECT ..." [--deadline=SECONDS]
//   dgf_cli [--port=N | --unix=PATH] append TABLE        # rows on stdin
//   dgf_cli [--port=N | --unix=PATH] stats
//   dgf_cli stats HOST:HTTP_PORT     # via the HTTP exporter, pretty-printed
//   dgf_cli [--port=N | --unix=PATH] ping
//   dgf_cli [--port=N | --unix=PATH] shutdown
//
// Query output: schema header line, then one pipe-separated line per row,
// then a `-- stats` trailer with the per-query accounting. `stats` prints
// the server counters as name=value lines; the HTTP form fetches /stats
// from a daemon started with --http-port and prints the counters grouped by
// prefix, with each histogram folded onto one quantile row.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/http_exporter.h"
#include "query/executor.h"
#include "server/client.h"

namespace dgf::server {
namespace {

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *value = arg + n + 1;
  return true;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "dgf_cli: %s\n", status.ToString().c_str());
  return 1;
}

int PrintResponse(const Result<Response>& response) {
  if (!response.ok()) return Fail(response.status());
  if (!response->ok()) return Fail(ResponseStatus(*response));
  return 0;
}

int RunQuery(ServerClient& client, const std::string& sql, double deadline) {
  auto response = client.Query(sql, deadline);
  if (!response.ok()) return Fail(response.status());
  if (!response->ok()) return Fail(ResponseStatus(*response));
  const QueryResultPayload& result = response->result;
  std::string header;
  for (const table::Field& field : result.schema.fields()) {
    if (!header.empty()) header += "|";
    header += field.name;
  }
  std::printf("%s\n", header.c_str());
  for (const std::string& row : result.rows) std::printf("%s\n", row.c_str());
  const query::QueryStats& stats = result.stats;
  std::printf(
      "-- stats: path=%s rows=%zu records_read=%llu matched=%llu "
      "splits=%d kv_gets=%llu cache_hits=%llu cache_misses=%llu "
      "wall_ms=%.2f\n",
      query::AccessPathName(stats.path), result.rows.size(),
      static_cast<unsigned long long>(stats.records_read),
      static_cast<unsigned long long>(stats.records_matched),
      stats.splits_scanned, static_cast<unsigned long long>(stats.kv_gets),
      static_cast<unsigned long long>(stats.cache_hits),
      static_cast<unsigned long long>(stats.cache_misses),
      stats.wall_seconds * 1e3);
  return 0;
}

int RunStats(ServerClient& client) {
  auto response = client.Stats();
  if (!response.ok()) return Fail(response.status());
  if (!response->ok()) return Fail(ResponseStatus(*response));
  for (const auto& [name, value] : response->stats) {
    std::printf("%s=%g\n", name.c_str(), value);
  }
  return 0;
}

/// Parses the exporter's flat JSON object ({"name": 1.5, ...}) into sorted
/// (name, value) pairs. Metric names are dotted identifiers, so no escape
/// handling is needed beyond finding the closing quote.
std::map<std::string, double> ParseFlatJson(const std::string& json) {
  std::map<std::string, double> metrics;
  size_t at = 0;
  for (;;) {
    const size_t open = json.find('"', at);
    if (open == std::string::npos) break;
    const size_t close = json.find('"', open + 1);
    if (close == std::string::npos) break;
    const size_t colon = json.find(':', close + 1);
    if (colon == std::string::npos) break;
    metrics[json.substr(open + 1, close - open - 1)] =
        std::strtod(json.c_str() + colon + 1, nullptr);
    at = colon + 1;
  }
  return metrics;
}

/// `stats HOST:HTTP_PORT`: fetch /stats from the HTTP exporter and pretty
/// print. Counters group under their first dotted segment; a histogram's
/// flattened series (base.count/.sum/.p50/.p95/.p99) folds back onto one
/// row. The exporter binds 127.0.0.1, so that is where we connect — the
/// host part is accepted for symmetry with --shard endpoints.
int RunHttpStats(const std::string& endpoint) {
  const size_t colon = endpoint.rfind(':');
  const int port =
      colon == std::string::npos ? 0 : std::atoi(endpoint.c_str() + colon + 1);
  if (port <= 0) {
    std::fprintf(stderr, "dgf_cli: bad stats endpoint (want HOST:PORT): %s\n",
                 endpoint.c_str());
    return 2;
  }
  auto response = obs::HttpGet(port, "/stats");
  if (!response.ok()) return Fail(response.status());
  if (response->status_code != 200) {
    std::fprintf(stderr, "dgf_cli: GET /stats -> HTTP %d\n",
                 response->status_code);
    return 1;
  }
  const std::map<std::string, double> metrics = ParseFlatJson(response->body);

  // Histogram bases: every name with all five flattened suffixes present.
  static const char* kSuffixes[] = {".count", ".sum", ".p50", ".p95", ".p99"};
  std::set<std::string> histogram_bases;
  std::set<std::string> folded;
  for (const auto& [name, value] : metrics) {
    if (name.size() <= 6 || name.compare(name.size() - 6, 6, ".count") != 0) {
      continue;
    }
    const std::string base = name.substr(0, name.size() - 6);
    bool all = true;
    for (const char* suffix : kSuffixes) {
      all = all && metrics.count(base + suffix) > 0;
    }
    if (!all) continue;
    histogram_bases.insert(base);
    for (const char* suffix : kSuffixes) folded.insert(base + suffix);
  }

  // Formatted display rows, keyed by the name they sort under (histograms
  // under their base name).
  std::map<std::string, std::string> rows;
  for (const std::string& base : histogram_bases) {
    char line[256];
    std::snprintf(line, sizeof(line),
                  "  %-28s count=%.0f sum=%g p50=%g p95=%g p99=%g", base.c_str(),
                  metrics.at(base + ".count"), metrics.at(base + ".sum"),
                  metrics.at(base + ".p50"), metrics.at(base + ".p95"),
                  metrics.at(base + ".p99"));
    rows[base] = line;
  }
  for (const auto& [name, value] : metrics) {
    if (folded.count(name) > 0) continue;
    char line[256];
    std::snprintf(line, sizeof(line), "  %-28s %g", name.c_str(), value);
    rows[name] = line;
  }

  // Sorted order; a change of the first dotted segment opens a new [group].
  std::string group;
  for (const auto& [name, line] : rows) {
    const size_t dot = name.find('.');
    const std::string prefix =
        dot == std::string::npos ? name : name.substr(0, dot);
    if (prefix != group) {
      group = prefix;
      std::printf("[%s]\n", group.c_str());
    }
    std::printf("%s\n", line.c_str());
  }
  return 0;
}

int RunAppend(ServerClient& client, const std::string& table) {
  std::vector<std::string> rows;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (!line.empty()) rows.push_back(line);
  }
  auto response = client.Append(table, rows);
  if (!response.ok()) return Fail(response.status());
  if (!response->ok()) return Fail(ResponseStatus(*response));
  std::printf("appended %llu rows to %s\n",
              static_cast<unsigned long long>(response->rows_appended),
              table.c_str());
  return 0;
}

int Main(int argc, char** argv) {
  int port = 4641;
  std::string unix_path;
  std::string command;
  std::vector<std::string> args;
  double deadline = 0;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--port", &value)) {
      port = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--unix", &value)) {
      unix_path = value;
    } else if (ParseFlag(argv[i], "--deadline", &value)) {
      deadline = std::atof(value.c_str());
    } else if (command.empty()) {
      command = argv[i];
    } else {
      args.emplace_back(argv[i]);
    }
  }
  if (command.empty()) {
    std::fprintf(stderr,
                 "usage: dgf_cli [--port=N|--unix=PATH] "
                 "query|append|stats|ping|shutdown ...\n"
                 "       dgf_cli stats HOST:HTTP_PORT\n");
    return 2;
  }
  // `stats HOST:PORT` talks HTTP to the observability exporter, not the wire
  // protocol — handle it before dialing the wire endpoint.
  if (command == "stats" && args.size() == 1 &&
      args[0].find(':') != std::string::npos) {
    return RunHttpStats(args[0]);
  }
  auto client = unix_path.empty() ? ServerClient::ConnectTcp("127.0.0.1", port)
                                  : ServerClient::ConnectUnix(unix_path);
  if (!client.ok()) return Fail(client.status());

  if (command == "query") {
    if (args.size() != 1) {
      std::fprintf(stderr, "usage: dgf_cli query \"SELECT ...\"\n");
      return 2;
    }
    return RunQuery(**client, args[0], deadline);
  }
  if (command == "append") {
    if (args.size() != 1) {
      std::fprintf(stderr, "usage: dgf_cli append TABLE < rows.txt\n");
      return 2;
    }
    return RunAppend(**client, args[0]);
  }
  if (command == "stats") return RunStats(**client);
  if (command == "ping") {
    const int rc = PrintResponse((*client)->Ping());
    if (rc == 0) std::printf("pong\n");
    return rc;
  }
  if (command == "shutdown") {
    const int rc = PrintResponse((*client)->Shutdown());
    if (rc == 0) std::printf("server drained and stopped\n");
    return rc;
  }
  std::fprintf(stderr, "unknown command: %s\n", command.c_str());
  return 2;
}

}  // namespace
}  // namespace dgf::server

int main(int argc, char** argv) { return dgf::server::Main(argc, argv); }
