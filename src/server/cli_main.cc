// dgf_cli: command-line client for dgf_serverd.
//
//   dgf_cli [--port=N | --unix=PATH] query "SELECT ..." [--deadline=SECONDS]
//   dgf_cli [--port=N | --unix=PATH] append TABLE        # rows on stdin
//   dgf_cli [--port=N | --unix=PATH] stats
//   dgf_cli [--port=N | --unix=PATH] ping
//   dgf_cli [--port=N | --unix=PATH] shutdown
//
// Query output: schema header line, then one pipe-separated line per row,
// then a `-- stats` trailer with the per-query accounting. `stats` prints
// the server counters as name=value lines.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "query/executor.h"
#include "server/client.h"

namespace dgf::server {
namespace {

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *value = arg + n + 1;
  return true;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "dgf_cli: %s\n", status.ToString().c_str());
  return 1;
}

int PrintResponse(const Result<Response>& response) {
  if (!response.ok()) return Fail(response.status());
  if (!response->ok()) return Fail(ResponseStatus(*response));
  return 0;
}

int RunQuery(ServerClient& client, const std::string& sql, double deadline) {
  auto response = client.Query(sql, deadline);
  if (!response.ok()) return Fail(response.status());
  if (!response->ok()) return Fail(ResponseStatus(*response));
  const QueryResultPayload& result = response->result;
  std::string header;
  for (const table::Field& field : result.schema.fields()) {
    if (!header.empty()) header += "|";
    header += field.name;
  }
  std::printf("%s\n", header.c_str());
  for (const std::string& row : result.rows) std::printf("%s\n", row.c_str());
  const query::QueryStats& stats = result.stats;
  std::printf(
      "-- stats: path=%s rows=%zu records_read=%llu matched=%llu "
      "splits=%d kv_gets=%llu cache_hits=%llu cache_misses=%llu "
      "wall_ms=%.2f\n",
      query::AccessPathName(stats.path), result.rows.size(),
      static_cast<unsigned long long>(stats.records_read),
      static_cast<unsigned long long>(stats.records_matched),
      stats.splits_scanned, static_cast<unsigned long long>(stats.kv_gets),
      static_cast<unsigned long long>(stats.cache_hits),
      static_cast<unsigned long long>(stats.cache_misses),
      stats.wall_seconds * 1e3);
  return 0;
}

int RunStats(ServerClient& client) {
  auto response = client.Stats();
  if (!response.ok()) return Fail(response.status());
  if (!response->ok()) return Fail(ResponseStatus(*response));
  for (const auto& [name, value] : response->stats) {
    std::printf("%s=%g\n", name.c_str(), value);
  }
  return 0;
}

int RunAppend(ServerClient& client, const std::string& table) {
  std::vector<std::string> rows;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (!line.empty()) rows.push_back(line);
  }
  auto response = client.Append(table, rows);
  if (!response.ok()) return Fail(response.status());
  if (!response->ok()) return Fail(ResponseStatus(*response));
  std::printf("appended %llu rows to %s\n",
              static_cast<unsigned long long>(response->rows_appended),
              table.c_str());
  return 0;
}

int Main(int argc, char** argv) {
  int port = 4641;
  std::string unix_path;
  std::string command;
  std::vector<std::string> args;
  double deadline = 0;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--port", &value)) {
      port = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--unix", &value)) {
      unix_path = value;
    } else if (ParseFlag(argv[i], "--deadline", &value)) {
      deadline = std::atof(value.c_str());
    } else if (command.empty()) {
      command = argv[i];
    } else {
      args.emplace_back(argv[i]);
    }
  }
  if (command.empty()) {
    std::fprintf(stderr,
                 "usage: dgf_cli [--port=N|--unix=PATH] "
                 "query|append|stats|ping|shutdown ...\n");
    return 2;
  }
  auto client = unix_path.empty() ? ServerClient::ConnectTcp("127.0.0.1", port)
                                  : ServerClient::ConnectUnix(unix_path);
  if (!client.ok()) return Fail(client.status());

  if (command == "query") {
    if (args.size() != 1) {
      std::fprintf(stderr, "usage: dgf_cli query \"SELECT ...\"\n");
      return 2;
    }
    return RunQuery(**client, args[0], deadline);
  }
  if (command == "append") {
    if (args.size() != 1) {
      std::fprintf(stderr, "usage: dgf_cli append TABLE < rows.txt\n");
      return 2;
    }
    return RunAppend(**client, args[0]);
  }
  if (command == "stats") return RunStats(**client);
  if (command == "ping") {
    const int rc = PrintResponse((*client)->Ping());
    if (rc == 0) std::printf("pong\n");
    return rc;
  }
  if (command == "shutdown") {
    const int rc = PrintResponse((*client)->Shutdown());
    if (rc == 0) std::printf("server drained and stopped\n");
    return rc;
  }
  std::fprintf(stderr, "unknown command: %s\n", command.c_str());
  return 2;
}

}  // namespace
}  // namespace dgf::server

int main(int argc, char** argv) { return dgf::server::Main(argc, argv); }
