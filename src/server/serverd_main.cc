// dgf_serverd: standalone query-service daemon over a generated demo world.
//
// Builds the paper's smart-meter dataset in a temporary MiniDfs, reorganizes
// it under a DGFIndex (sum/count precomputed), registers the userInfo join
// table, and serves the wire protocol until a SHUTDOWN request.
//
//   dgf_serverd --port=4641              # TCP on 127.0.0.1
//   dgf_serverd --unix=/tmp/dgf.sock     # Unix socket
//   dgf_serverd --smoke                  # self-test: serve, query, shut down
//
// Coordinator mode fronts N already-running shard servers with the
// scatter-gather coordinator, speaking the same wire protocol, so dgf_cli
// cannot tell the cluster from a single node. Each shard should serve a
// contiguous day band; --cuts lists the band boundaries (first day owned by
// shard i+1), so with N shards there are N-1 cuts:
//
//   dgf_serverd --port=4642 --start-day=15675 --days=2 &   # shard 0
//   dgf_serverd --port=4643 --start-day=15677 --days=3 &   # shard 1
//   dgf_serverd --coordinator --port=4641 --cuts=15677
//               --shard=127.0.0.1:4642 --shard=127.0.0.1:4643
//
// Replication: `--replication=k` backs the shard's DFS with k replica
// stores (chunk checksums + failover reads), and `--replica-port=P` serves
// the same shard on a second wire endpoint. Handing those endpoints to the
// coordinator (`--replica=...`, one per shard, in --shard order) arms its
// one-shot replica retry for read sub-queries:
//
//   dgf_serverd --port=4642 --replica-port=5642 --replication=2 ... &
//   dgf_serverd --port=4643 --replica-port=5643 --replication=2 ... &
//   dgf_serverd --coordinator --port=4641 --cuts=15677
//               --shard=127.0.0.1:4642 --shard=127.0.0.1:4643
//               --replica=127.0.0.1:5642 --replica=127.0.0.1:5643
//   dgf_cli --port=4642 shutdown      # primary endpoint dies; the daemon
//                                     # keeps serving the replica endpoint
//
// Observability: `--http-port=P` (0 = ephemeral, printed at startup) serves
// GET /metrics (Prometheus text), /stats (JSON), /trace (recent query
// traces), and /healthz on 127.0.0.1 — works in both shard and coordinator
// mode, so every process of a cluster exports its own metrics:
//
//   dgf_serverd --port=4642 --http-port=9642 ... &
//   dgf_serverd --coordinator --port=4641 --http-port=9641 ...
//   curl -s 127.0.0.1:9641/metrics | grep dgf_coord
//
// World shape flags: --users, --days, --regions, --start-day. Service
// flags: --max-concurrent, --max-pending.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "coord/coordinator.h"
#include "coord/shard_map.h"
#include "dgf/dgf_builder.h"
#include "kv/mem_kv.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "server/client.h"
#include "server/query_service.h"
#include "server/server.h"
#include "workload/meter_gen.h"

namespace dgf::server {
namespace {

struct Flags {
  int port = 4641;
  std::string unix_path;
  bool smoke = false;
  int64_t users = 200;
  int days = 5;
  int64_t regions = 5;
  int64_t start_day = 15675;
  int max_concurrent = 4;
  int max_pending = 16;
  /// DFS replication factor of the served world (k replica stores with
  /// chunk checksums and failover reads; 1 = legacy single copy).
  int replication = 1;
  /// > 0: also serve the same QueryService on this second port (the shard's
  /// replica endpoint a coordinator can fail reads over to).
  int replica_port = 0;
  /// >= 0: serve the HTTP observability endpoints (/metrics, /stats, /trace,
  /// /healthz) on this port (0 picks an ephemeral one, printed at startup).
  /// < 0 (default): no HTTP exporter.
  int http_port = -1;
  bool coordinator = false;
  std::vector<coord::ShardEndpoint> shards;
  std::vector<int64_t> cuts;
  /// Coordinator mode: optional replica endpoint per shard, in --shard order.
  std::vector<coord::ShardEndpoint> replicas;
};

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *value = arg + n + 1;
  return true;
}

/// The served world; owns the DFS directory and index for the process
/// lifetime.
struct DemoWorld {
  std::filesystem::path dir;
  std::shared_ptr<fs::MiniDfs> dfs;
  workload::MeterConfig config;
  table::TableDesc meter;
  table::TableDesc user_info;
  std::shared_ptr<kv::KvStore> store;
  std::unique_ptr<core::DgfIndex> dgf;

  ~DemoWorld() {
    if (dir.empty()) return;
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }
};

Result<std::unique_ptr<DemoWorld>> BuildDemoWorld(const Flags& flags) {
  auto world = std::make_unique<DemoWorld>();
  world->dir = std::filesystem::temp_directory_path() /
               ("dgf_serverd_" + std::to_string(::getpid()));
  std::filesystem::remove_all(world->dir);

  fs::MiniDfs::Options dfs_options;
  dfs_options.root_dir = world->dir.string();
  dfs_options.block_size = 256 * 1024;
  dfs_options.replication = flags.replication;
  DGF_ASSIGN_OR_RETURN(world->dfs, fs::MiniDfs::Open(dfs_options));

  world->config.num_users = flags.users;
  world->config.num_days = flags.days;
  world->config.num_regions = flags.regions;
  world->config.start_day = flags.start_day;
  world->config.extra_metrics = 2;
  DGF_ASSIGN_OR_RETURN(
      world->meter,
      workload::GenerateMeterTable(world->dfs, "/warehouse/meter",
                                   world->config));
  DGF_ASSIGN_OR_RETURN(world->user_info,
                       workload::GenerateUserInfoTable(
                           world->dfs, "/warehouse/userinfo", world->config));

  core::DgfBuilder::Options build;
  build.dims = {
      {"userId", table::DataType::kInt64, 0, 50},
      {"regionId", table::DataType::kInt64, 0, 1},
      {"time", table::DataType::kDate,
       static_cast<double>(world->config.start_day), 1},
  };
  build.precompute = {"sum(powerConsumed)", "count(*)"};
  build.data_dir = "/warehouse/dgf";
  world->store = std::make_shared<kv::MemKv>();
  DGF_ASSIGN_OR_RETURN(world->dgf,
                       core::DgfBuilder::Build(world->dfs, world->store,
                                               world->meter, build));
  return world;
}

int RunSmoke() {
  Flags flags;
  flags.users = 60;
  flags.days = 3;
  auto world = BuildDemoWorld(flags);
  if (!world.ok()) {
    std::fprintf(stderr, "SMOKE FAIL: world: %s\n",
                 world.status().ToString().c_str());
    return 1;
  }
  QueryService::Options service_options;
  service_options.dfs = (*world)->dfs;
  QueryService service(service_options);
  service.RegisterTable((*world)->meter);
  service.RegisterTable((*world)->user_info);
  service.RegisterDgfIndex((*world)->meter.name, (*world)->dgf.get());

  Server::Options server_options;
  server_options.service = &service;
  server_options.port = 0;
  auto server = Server::Start(server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "SMOKE FAIL: start: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  auto client = ServerClient::ConnectTcp("127.0.0.1", (*server)->port());
  if (!client.ok()) {
    std::fprintf(stderr, "SMOKE FAIL: connect: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }
  auto check = [](const char* what, const Result<Response>& r) {
    if (r.ok() && r->ok()) return true;
    std::fprintf(stderr, "SMOKE FAIL: %s: %s\n", what,
                 r.ok() ? ResponseStatus(*r).ToString().c_str()
                        : r.status().ToString().c_str());
    return false;
  };
  if (!check("ping", (*client)->Ping())) return 1;
  auto query = (*client)->Query(
      "SELECT count(*), sum(powerConsumed) FROM meterdata WHERE regionId >= 0");
  if (!check("query", query)) return 1;
  const auto expected = static_cast<double>(flags.users * flags.days);
  if (query->result.rows.size() != 1) {
    std::fprintf(stderr, "SMOKE FAIL: expected 1 row, got %zu\n",
                 query->result.rows.size());
    return 1;
  }
  const double count = std::strtod(query->result.rows[0].c_str(), nullptr);
  if (count != expected) {
    std::fprintf(stderr, "SMOKE FAIL: count(*) = %f, want %f\n", count,
                 expected);
    return 1;
  }
  auto stats = (*client)->Stats();
  if (!check("stats", stats)) return 1;
  if (!check("shutdown", (*client)->Shutdown())) return 1;
  (*server)->WaitShutdown();
  (*server)->Shutdown();
  std::printf("SMOKE PASS (1 query, %d rows scanned check ok)\n", 1);
  return 0;
}

/// Bridges the served world's pre-existing atomic totals (DFS byte/failover
/// counters, the index's decoded-GFU cache totals) into `registry` as
/// snapshot-time callback gauges, so /metrics covers the whole process, not
/// just what the services record directly.
void RegisterWorldGauges(obs::MetricsRegistry* registry,
                         const DemoWorld& world) {
  const auto dfs = world.dfs;
  registry->SetCallback("fs.bytes_written", [dfs] {
    return static_cast<double>(dfs->TotalBytesWritten());
  });
  registry->SetCallback("fs.replica_bytes_written", [dfs] {
    return static_cast<double>(dfs->TotalReplicaBytesWritten());
  });
  registry->SetCallback("fs.bytes_read", [dfs] {
    return static_cast<double>(dfs->TotalBytesRead());
  });
  registry->SetCallback("fs.pread_calls", [dfs] {
    return static_cast<double>(dfs->TotalPreadCalls());
  });
  registry->SetCallback("fs.read_failovers", [dfs] {
    return static_cast<double>(dfs->TotalReadFailovers());
  });
  registry->SetCallback("fs.checksum_failures", [dfs] {
    return static_cast<double>(dfs->TotalChecksumFailures());
  });
  const core::DgfIndex* dgf = world.dgf.get();  // lives as long as the daemon
  registry->SetCallback("index.cache_hits_total", [dgf] {
    return static_cast<double>(dgf->cumulative_cache_hits());
  });
  registry->SetCallback("index.cache_misses_total", [dgf] {
    return static_cast<double>(dgf->cumulative_cache_misses());
  });
}

/// Starts the HTTP observability endpoint when --http-port was given.
/// Returns null (success) when it was not.
Result<std::unique_ptr<obs::HttpExporter>> MaybeStartExporter(
    const Flags& flags, obs::MetricsRegistry* registry,
    obs::TraceLog* trace_log) {
  if (flags.http_port < 0) return std::unique_ptr<obs::HttpExporter>();
  obs::HttpExporter::Options options;
  options.port = flags.http_port;
  options.registry = registry;
  options.trace_log = trace_log;
  DGF_ASSIGN_OR_RETURN(auto exporter, obs::HttpExporter::Start(options));
  std::printf("dgf_serverd: http observability on 127.0.0.1:%d "
              "(/metrics /stats /trace /healthz)\n",
              exporter->port());
  return exporter;
}

int RunServer(const Flags& flags) {
  auto world = BuildDemoWorld(flags);
  if (!world.ok()) {
    std::fprintf(stderr, "dgf_serverd: %s\n",
                 world.status().ToString().c_str());
    return 1;
  }
  QueryService::Options service_options;
  service_options.dfs = (*world)->dfs;
  service_options.max_concurrent = flags.max_concurrent;
  service_options.max_pending = flags.max_pending;
  service_options.metrics = obs::MetricsRegistry::Default();
  QueryService service(service_options);
  service.RegisterTable((*world)->meter);
  service.RegisterTable((*world)->user_info);
  service.RegisterDgfIndex((*world)->meter.name, (*world)->dgf.get());
  RegisterWorldGauges(service.metrics(), **world);
  auto exporter =
      MaybeStartExporter(flags, service.metrics(), service.trace_log());
  if (!exporter.ok()) {
    std::fprintf(stderr, "dgf_serverd: http exporter: %s\n",
                 exporter.status().ToString().c_str());
    return 1;
  }

  Server::Options server_options;
  server_options.service = &service;
  server_options.unix_path = flags.unix_path;
  server_options.port = flags.port;
  // With a replica endpoint the two servers share this QueryService, so a
  // SHUTDOWN sent to one endpoint closes just that endpoint — the daemon
  // keeps answering on the other (that is the survivability demo: kill the
  // primary, reads keep flowing via the coordinator's replica retry) and
  // exits, draining, once every endpoint has been told to shut down.
  server_options.drain_service_on_shutdown = flags.replica_port <= 0;
  auto server = Server::Start(server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "dgf_serverd: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  // The replica endpoint serves the same QueryService over a second
  // listener; a coordinator given it can fail read sub-queries over when
  // the primary endpoint dies.
  std::unique_ptr<Server> replica_server;
  if (flags.replica_port > 0) {
    Server::Options replica_options;
    replica_options.service = &service;
    replica_options.port = flags.replica_port;
    replica_options.drain_service_on_shutdown = false;
    auto replica = Server::Start(replica_options);
    if (!replica.ok()) {
      std::fprintf(stderr, "dgf_serverd: replica endpoint: %s\n",
                   replica.status().ToString().c_str());
      return 1;
    }
    replica_server = std::move(*replica);
  }
  if (flags.unix_path.empty()) {
    std::printf("dgf_serverd: serving %s (%lld rows) on 127.0.0.1:%d\n",
                (*world)->meter.name.c_str(),
                static_cast<long long>((*world)->config.TotalRows()),
                (*server)->port());
  } else {
    std::printf("dgf_serverd: serving %s (%lld rows) on %s\n",
                (*world)->meter.name.c_str(),
                static_cast<long long>((*world)->config.TotalRows()),
                flags.unix_path.c_str());
  }
  if (replica_server != nullptr) {
    std::printf("dgf_serverd: replica endpoint on 127.0.0.1:%d "
                "(dfs replication=%d)\n",
                replica_server->port(), flags.replication);
  }
  std::fflush(stdout);
  (*server)->WaitShutdown();
  (*server)->Shutdown();
  if (replica_server != nullptr) {
    std::printf("dgf_serverd: primary endpoint closed; still serving the "
                "replica endpoint\n");
    std::fflush(stdout);
    replica_server->WaitShutdown();
    replica_server->Shutdown();
    // Shared-service endpoints do not drain on shutdown; the daemon drains
    // once, here, after the last endpoint is down.
    service.BeginDrain();
    service.Drain();
  }
  std::printf("dgf_serverd: drained, bye\n");
  return 0;
}

/// Fronts already-running shard servers with a Coordinator behind a server
/// speaking the same wire protocol. The catalog mirrors the demo world's
/// schemas (every shard serves one); only schemas matter to the coordinator,
/// which never scans local data.
int RunCoordinator(const Flags& flags) {
  if (flags.shards.empty()) {
    std::fprintf(stderr, "dgf_serverd: --coordinator needs >= 1 --shard\n");
    return 2;
  }
  if (flags.cuts.size() + 1 != flags.shards.size()) {
    std::fprintf(stderr,
                 "dgf_serverd: %zu shards need %zu cuts (got %zu): each cut "
                 "is the first day owned by the next shard\n",
                 flags.shards.size(), flags.shards.size() - 1,
                 flags.cuts.size());
    return 2;
  }
  workload::MeterConfig config;
  config.extra_metrics = 2;  // the demo world's schema shape

  if (!flags.replicas.empty() &&
      flags.replicas.size() != flags.shards.size()) {
    std::fprintf(stderr,
                 "dgf_serverd: --replica list must match --shard list "
                 "(%zu shards, %zu replicas; order pairs them up)\n",
                 flags.shards.size(), flags.replicas.size());
    return 2;
  }
  coord::Coordinator::Options options;
  options.shard_map =
      coord::ShardMap::ByCuts("time", table::DataType::kDate, flags.cuts);
  options.shards = flags.shards;
  options.replicas = flags.replicas;
  options.max_concurrent = flags.max_concurrent;
  options.max_pending = flags.max_pending;
  options.metrics = obs::MetricsRegistry::Default();
  coord::Coordinator coordinator(std::move(options));
  coordinator.RegisterTable(table::TableDesc{
      "meterdata", workload::MeterSchema(config), table::FileFormat::kText,
      ""});
  coordinator.RegisterTable(table::TableDesc{
      "userinfo", workload::UserInfoSchema(), table::FileFormat::kText, ""});
  auto exporter = MaybeStartExporter(flags, coordinator.metrics(),
                                     coordinator.trace_log());
  if (!exporter.ok()) {
    std::fprintf(stderr, "dgf_serverd: http exporter: %s\n",
                 exporter.status().ToString().c_str());
    return 1;
  }

  Server::Options server_options;
  server_options.service = &coordinator;
  server_options.unix_path = flags.unix_path;
  server_options.port = flags.port;
  auto server = Server::Start(server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "dgf_serverd: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  std::string shard_list;
  for (const coord::ShardEndpoint& endpoint : flags.shards) {
    if (!shard_list.empty()) shard_list += ", ";
    shard_list += endpoint.ToString();
  }
  if (flags.unix_path.empty()) {
    std::printf("dgf_serverd: coordinating %zu shard%s (%s) on 127.0.0.1:%d\n",
                flags.shards.size(), flags.shards.size() == 1 ? "" : "s",
                shard_list.c_str(), (*server)->port());
  } else {
    std::printf("dgf_serverd: coordinating %zu shard%s (%s) on %s\n",
                flags.shards.size(), flags.shards.size() == 1 ? "" : "s",
                shard_list.c_str(), flags.unix_path.c_str());
  }
  std::fflush(stdout);
  (*server)->WaitShutdown();
  (*server)->Shutdown();
  std::printf("dgf_serverd: drained, bye\n");
  return 0;
}

/// "host:port" or "unix:/path" -> endpoint.
bool ParseEndpoint(const std::string& value, coord::ShardEndpoint* out) {
  if (value.rfind("unix:", 0) == 0) {
    out->unix_path = value.substr(5);
    return !out->unix_path.empty();
  }
  const size_t colon = value.rfind(':');
  if (colon == std::string::npos || colon == 0) return false;
  out->host = value.substr(0, colon);
  out->port = std::atoi(value.c_str() + colon + 1);
  return out->port > 0;
}

int Main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (std::strcmp(argv[i], "--smoke") == 0) {
      flags.smoke = true;
    } else if (std::strcmp(argv[i], "--coordinator") == 0) {
      flags.coordinator = true;
    } else if (ParseFlag(argv[i], "--shard", &value)) {
      coord::ShardEndpoint endpoint;
      if (!ParseEndpoint(value, &endpoint)) {
        std::fprintf(stderr, "bad --shard endpoint: %s\n", value.c_str());
        return 2;
      }
      flags.shards.push_back(std::move(endpoint));
    } else if (ParseFlag(argv[i], "--replica", &value)) {
      coord::ShardEndpoint endpoint;
      if (!ParseEndpoint(value, &endpoint)) {
        std::fprintf(stderr, "bad --replica endpoint: %s\n", value.c_str());
        return 2;
      }
      flags.replicas.push_back(std::move(endpoint));
    } else if (ParseFlag(argv[i], "--cuts", &value)) {
      const char* p = value.c_str();
      while (*p != '\0') {
        char* end = nullptr;
        const long long cut = std::strtoll(p, &end, 10);
        if (end == p) {
          std::fprintf(stderr, "bad --cuts list: %s\n", value.c_str());
          return 2;
        }
        flags.cuts.push_back(cut);
        p = (*end == ',') ? end + 1 : end;
      }
    } else if (ParseFlag(argv[i], "--start-day", &value)) {
      flags.start_day = std::atoll(value.c_str());
    } else if (ParseFlag(argv[i], "--port", &value)) {
      flags.port = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--unix", &value)) {
      flags.unix_path = value;
    } else if (ParseFlag(argv[i], "--users", &value)) {
      flags.users = std::atoll(value.c_str());
    } else if (ParseFlag(argv[i], "--days", &value)) {
      flags.days = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--regions", &value)) {
      flags.regions = std::atoll(value.c_str());
    } else if (ParseFlag(argv[i], "--replication", &value)) {
      flags.replication = std::atoi(value.c_str());
      if (flags.replication < 1) {
        std::fprintf(stderr, "bad --replication factor: %s\n", value.c_str());
        return 2;
      }
    } else if (ParseFlag(argv[i], "--replica-port", &value)) {
      flags.replica_port = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--http-port", &value)) {
      flags.http_port = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--max-concurrent", &value)) {
      flags.max_concurrent = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--max-pending", &value)) {
      flags.max_pending = std::atoi(value.c_str());
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }
  if (flags.smoke) return RunSmoke();
  return flags.coordinator ? RunCoordinator(flags) : RunServer(flags);
}

}  // namespace
}  // namespace dgf::server

int main(int argc, char** argv) { return dgf::server::Main(argc, argv); }
