// dgf_serverd: standalone query-service daemon over a generated demo world.
//
// Builds the paper's smart-meter dataset in a temporary MiniDfs, reorganizes
// it under a DGFIndex (sum/count precomputed), registers the userInfo join
// table, and serves the wire protocol until a SHUTDOWN request.
//
//   dgf_serverd --port=4641              # TCP on 127.0.0.1
//   dgf_serverd --unix=/tmp/dgf.sock     # Unix socket
//   dgf_serverd --smoke                  # self-test: serve, query, shut down
//
// World shape flags: --users, --days, --regions. Service flags:
// --max-concurrent, --max-pending.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>

#include "dgf/dgf_builder.h"
#include "kv/mem_kv.h"
#include "server/client.h"
#include "server/query_service.h"
#include "server/server.h"
#include "workload/meter_gen.h"

namespace dgf::server {
namespace {

struct Flags {
  int port = 4641;
  std::string unix_path;
  bool smoke = false;
  int64_t users = 200;
  int days = 5;
  int64_t regions = 5;
  int max_concurrent = 4;
  int max_pending = 16;
};

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *value = arg + n + 1;
  return true;
}

/// The served world; owns the DFS directory and index for the process
/// lifetime.
struct DemoWorld {
  std::filesystem::path dir;
  std::shared_ptr<fs::MiniDfs> dfs;
  workload::MeterConfig config;
  table::TableDesc meter;
  table::TableDesc user_info;
  std::shared_ptr<kv::KvStore> store;
  std::unique_ptr<core::DgfIndex> dgf;

  ~DemoWorld() {
    if (dir.empty()) return;
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }
};

Result<std::unique_ptr<DemoWorld>> BuildDemoWorld(const Flags& flags) {
  auto world = std::make_unique<DemoWorld>();
  world->dir = std::filesystem::temp_directory_path() /
               ("dgf_serverd_" + std::to_string(::getpid()));
  std::filesystem::remove_all(world->dir);

  fs::MiniDfs::Options dfs_options;
  dfs_options.root_dir = world->dir.string();
  dfs_options.block_size = 256 * 1024;
  DGF_ASSIGN_OR_RETURN(world->dfs, fs::MiniDfs::Open(dfs_options));

  world->config.num_users = flags.users;
  world->config.num_days = flags.days;
  world->config.num_regions = flags.regions;
  world->config.extra_metrics = 2;
  DGF_ASSIGN_OR_RETURN(
      world->meter,
      workload::GenerateMeterTable(world->dfs, "/warehouse/meter",
                                   world->config));
  DGF_ASSIGN_OR_RETURN(world->user_info,
                       workload::GenerateUserInfoTable(
                           world->dfs, "/warehouse/userinfo", world->config));

  core::DgfBuilder::Options build;
  build.dims = {
      {"userId", table::DataType::kInt64, 0, 50},
      {"regionId", table::DataType::kInt64, 0, 1},
      {"time", table::DataType::kDate,
       static_cast<double>(world->config.start_day), 1},
  };
  build.precompute = {"sum(powerConsumed)", "count(*)"};
  build.data_dir = "/warehouse/dgf";
  world->store = std::make_shared<kv::MemKv>();
  DGF_ASSIGN_OR_RETURN(world->dgf,
                       core::DgfBuilder::Build(world->dfs, world->store,
                                               world->meter, build));
  return world;
}

int RunSmoke() {
  Flags flags;
  flags.users = 60;
  flags.days = 3;
  auto world = BuildDemoWorld(flags);
  if (!world.ok()) {
    std::fprintf(stderr, "SMOKE FAIL: world: %s\n",
                 world.status().ToString().c_str());
    return 1;
  }
  QueryService::Options service_options;
  service_options.dfs = (*world)->dfs;
  QueryService service(service_options);
  service.RegisterTable((*world)->meter);
  service.RegisterTable((*world)->user_info);
  service.RegisterDgfIndex((*world)->meter.name, (*world)->dgf.get());

  Server::Options server_options;
  server_options.service = &service;
  server_options.port = 0;
  auto server = Server::Start(server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "SMOKE FAIL: start: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  auto client = ServerClient::ConnectTcp("127.0.0.1", (*server)->port());
  if (!client.ok()) {
    std::fprintf(stderr, "SMOKE FAIL: connect: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }
  auto check = [](const char* what, const Result<Response>& r) {
    if (r.ok() && r->ok()) return true;
    std::fprintf(stderr, "SMOKE FAIL: %s: %s\n", what,
                 r.ok() ? ResponseStatus(*r).ToString().c_str()
                        : r.status().ToString().c_str());
    return false;
  };
  if (!check("ping", (*client)->Ping())) return 1;
  auto query = (*client)->Query(
      "SELECT count(*), sum(powerConsumed) FROM meterdata WHERE regionId >= 0");
  if (!check("query", query)) return 1;
  const auto expected = static_cast<double>(flags.users * flags.days);
  if (query->result.rows.size() != 1) {
    std::fprintf(stderr, "SMOKE FAIL: expected 1 row, got %zu\n",
                 query->result.rows.size());
    return 1;
  }
  const double count = std::strtod(query->result.rows[0].c_str(), nullptr);
  if (count != expected) {
    std::fprintf(stderr, "SMOKE FAIL: count(*) = %f, want %f\n", count,
                 expected);
    return 1;
  }
  auto stats = (*client)->Stats();
  if (!check("stats", stats)) return 1;
  if (!check("shutdown", (*client)->Shutdown())) return 1;
  (*server)->WaitShutdown();
  (*server)->Shutdown();
  std::printf("SMOKE PASS (1 query, %d rows scanned check ok)\n", 1);
  return 0;
}

int RunServer(const Flags& flags) {
  auto world = BuildDemoWorld(flags);
  if (!world.ok()) {
    std::fprintf(stderr, "dgf_serverd: %s\n",
                 world.status().ToString().c_str());
    return 1;
  }
  QueryService::Options service_options;
  service_options.dfs = (*world)->dfs;
  service_options.max_concurrent = flags.max_concurrent;
  service_options.max_pending = flags.max_pending;
  QueryService service(service_options);
  service.RegisterTable((*world)->meter);
  service.RegisterTable((*world)->user_info);
  service.RegisterDgfIndex((*world)->meter.name, (*world)->dgf.get());

  Server::Options server_options;
  server_options.service = &service;
  server_options.unix_path = flags.unix_path;
  server_options.port = flags.port;
  auto server = Server::Start(server_options);
  if (!server.ok()) {
    std::fprintf(stderr, "dgf_serverd: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  if (flags.unix_path.empty()) {
    std::printf("dgf_serverd: serving %s (%lld rows) on 127.0.0.1:%d\n",
                (*world)->meter.name.c_str(),
                static_cast<long long>((*world)->config.TotalRows()),
                (*server)->port());
  } else {
    std::printf("dgf_serverd: serving %s (%lld rows) on %s\n",
                (*world)->meter.name.c_str(),
                static_cast<long long>((*world)->config.TotalRows()),
                flags.unix_path.c_str());
  }
  std::fflush(stdout);
  (*server)->WaitShutdown();
  (*server)->Shutdown();
  std::printf("dgf_serverd: drained, bye\n");
  return 0;
}

int Main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (std::strcmp(argv[i], "--smoke") == 0) {
      flags.smoke = true;
    } else if (ParseFlag(argv[i], "--port", &value)) {
      flags.port = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--unix", &value)) {
      flags.unix_path = value;
    } else if (ParseFlag(argv[i], "--users", &value)) {
      flags.users = std::atoll(value.c_str());
    } else if (ParseFlag(argv[i], "--days", &value)) {
      flags.days = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--regions", &value)) {
      flags.regions = std::atoll(value.c_str());
    } else if (ParseFlag(argv[i], "--max-concurrent", &value)) {
      flags.max_concurrent = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--max-pending", &value)) {
      flags.max_pending = std::atoi(value.c_str());
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }
  return flags.smoke ? RunSmoke() : RunServer(flags);
}

}  // namespace
}  // namespace dgf::server

int main(int argc, char** argv) { return dgf::server::Main(argc, argv); }
