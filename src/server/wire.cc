#include "server/wire.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstring>

#include "common/encoding.h"

namespace dgf::server {
namespace {

void PutDouble(std::string* dst, double value) {
  PutFixed64(dst, std::bit_cast<uint64_t>(value));
}

Result<double> GetDouble(std::string_view* input) {
  if (input->size() < 8) return Status::Corruption("truncated double");
  const double value = std::bit_cast<double>(DecodeFixed64(input->data()));
  input->remove_prefix(8);
  return value;
}

Result<uint64_t> GetFixed64(std::string_view* input) {
  if (input->size() < 8) return Status::Corruption("truncated fixed64");
  const uint64_t value = DecodeFixed64(input->data());
  input->remove_prefix(8);
  return value;
}

Result<uint32_t> GetFixed32(std::string_view* input) {
  if (input->size() < 4) return Status::Corruption("truncated fixed32");
  const uint32_t value = DecodeFixed32(input->data());
  input->remove_prefix(4);
  return value;
}

Result<uint8_t> GetByte(std::string_view* input) {
  if (input->empty()) return Status::Corruption("truncated byte");
  const auto value = static_cast<uint8_t>(input->front());
  input->remove_prefix(1);
  return value;
}

void EncodeQueryStats(std::string* dst, const query::QueryStats& stats) {
  dst->push_back(static_cast<char>(stats.path));
  PutFixed64(dst, stats.records_read);
  PutFixed64(dst, stats.records_matched);
  PutFixed64(dst, stats.bytes_read);
  PutFixed32(dst, static_cast<uint32_t>(stats.splits_scanned));
  PutFixed64(dst, stats.kv_gets);
  PutFixed64(dst, stats.cache_hits);
  PutFixed64(dst, stats.cache_misses);
  PutDouble(dst, stats.index_seconds);
  PutDouble(dst, stats.data_seconds);
  PutDouble(dst, stats.total_seconds);
  PutDouble(dst, stats.wall_seconds);
  // Trace tail. Stats are the last field of a QUERY response, so a decoder
  // that predates tracing treats these bytes as trailing garbage and rejects
  // the frame — acceptable, since both ends of a cluster upgrade together —
  // while THIS decoder accepts old frames that simply stop above.
  PutFixed64(dst, stats.trace_id);
  PutVarint64(dst, stats.spans.size());
  for (const obs::SpanTiming& span : stats.spans) {
    PutLengthPrefixed(dst, span.name);
    PutDouble(dst, span.start_seconds);
    PutDouble(dst, span.duration_seconds);
  }
}

Result<query::QueryStats> DecodeQueryStats(std::string_view* input) {
  query::QueryStats stats;
  DGF_ASSIGN_OR_RETURN(uint8_t path, GetByte(input));
  if (path > static_cast<uint8_t>(query::AccessPath::kAggregateRewrite)) {
    return Status::Corruption("bad access path byte");
  }
  stats.path = static_cast<query::AccessPath>(path);
  DGF_ASSIGN_OR_RETURN(stats.records_read, GetFixed64(input));
  DGF_ASSIGN_OR_RETURN(stats.records_matched, GetFixed64(input));
  DGF_ASSIGN_OR_RETURN(stats.bytes_read, GetFixed64(input));
  DGF_ASSIGN_OR_RETURN(uint32_t splits, GetFixed32(input));
  stats.splits_scanned = static_cast<int>(splits);
  DGF_ASSIGN_OR_RETURN(stats.kv_gets, GetFixed64(input));
  DGF_ASSIGN_OR_RETURN(stats.cache_hits, GetFixed64(input));
  DGF_ASSIGN_OR_RETURN(stats.cache_misses, GetFixed64(input));
  DGF_ASSIGN_OR_RETURN(stats.index_seconds, GetDouble(input));
  DGF_ASSIGN_OR_RETURN(stats.data_seconds, GetDouble(input));
  DGF_ASSIGN_OR_RETURN(stats.total_seconds, GetDouble(input));
  DGF_ASSIGN_OR_RETURN(stats.wall_seconds, GetDouble(input));
  // Optional trace tail: pre-tracing frames end here.
  if (!input->empty()) {
    DGF_ASSIGN_OR_RETURN(stats.trace_id, GetFixed64(input));
    DGF_ASSIGN_OR_RETURN(uint64_t n, GetVarint64(input));
    // Each span costs at least 17 bytes (length prefix + two fixed64
    // doubles); bound before reserving, as with row counts.
    if (n > input->size() / 17) {
      return Status::Corruption("absurd span count");
    }
    stats.spans.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      obs::SpanTiming span;
      DGF_ASSIGN_OR_RETURN(std::string_view name, GetLengthPrefixed(input));
      span.name = std::string(name);
      DGF_ASSIGN_OR_RETURN(span.start_seconds, GetDouble(input));
      DGF_ASSIGN_OR_RETURN(span.duration_seconds, GetDouble(input));
      stats.spans.push_back(std::move(span));
    }
  }
  return stats;
}

void EncodeSchema(std::string* dst, const table::Schema& schema) {
  PutVarint64(dst, static_cast<uint64_t>(schema.num_fields()));
  for (const table::Field& field : schema.fields()) {
    PutLengthPrefixed(dst, field.name);
    dst->push_back(static_cast<char>(field.type));
  }
}

Result<table::Schema> DecodeSchema(std::string_view* input) {
  DGF_ASSIGN_OR_RETURN(uint64_t n, GetVarint64(input));
  if (n > 4096) return Status::Corruption("absurd schema arity");
  std::vector<table::Field> fields;
  fields.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    DGF_ASSIGN_OR_RETURN(std::string_view name, GetLengthPrefixed(input));
    DGF_ASSIGN_OR_RETURN(uint8_t type, GetByte(input));
    if (type > static_cast<uint8_t>(table::DataType::kDate)) {
      return Status::Corruption("bad data type byte");
    }
    fields.push_back(
        {std::string(name), static_cast<table::DataType>(type)});
  }
  return table::Schema(std::move(fields));
}

}  // namespace

bool ValidOpcode(uint8_t raw) {
  return raw >= static_cast<uint8_t>(Opcode::kQuery) &&
         raw <= static_cast<uint8_t>(Opcode::kShutdown);
}

const char* OpcodeName(Opcode opcode) {
  switch (opcode) {
    case Opcode::kQuery:
      return "QUERY";
    case Opcode::kAppend:
      return "APPEND";
    case Opcode::kStats:
      return "STATS";
    case Opcode::kCancel:
      return "CANCEL";
    case Opcode::kPing:
      return "PING";
    case Opcode::kShutdown:
      return "SHUTDOWN";
  }
  return "?";
}

std::string EncodeRequest(const Request& request) {
  std::string body;
  body.push_back(static_cast<char>(request.opcode));
  PutFixed64(&body, request.request_id);
  switch (request.opcode) {
    case Opcode::kQuery:
      PutLengthPrefixed(&body, request.query.sql);
      PutDouble(&body, request.query.deadline_seconds);
      PutFixed64(&body, request.query.trace_id);
      break;
    case Opcode::kAppend:
      PutLengthPrefixed(&body, request.append.table);
      PutVarint64(&body, request.append.rows.size());
      for (const std::string& row : request.append.rows) {
        PutLengthPrefixed(&body, row);
      }
      break;
    case Opcode::kCancel:
      PutFixed64(&body, request.cancel_target);
      break;
    case Opcode::kStats:
    case Opcode::kPing:
    case Opcode::kShutdown:
      break;
  }
  return body;
}

Result<Request> DecodeRequest(std::string_view body) {
  Request request;
  DGF_ASSIGN_OR_RETURN(uint8_t opcode, GetByte(&body));
  if (!ValidOpcode(opcode)) return Status::Corruption("unknown opcode");
  request.opcode = static_cast<Opcode>(opcode);
  DGF_ASSIGN_OR_RETURN(request.request_id, GetFixed64(&body));
  switch (request.opcode) {
    case Opcode::kQuery: {
      DGF_ASSIGN_OR_RETURN(std::string_view sql, GetLengthPrefixed(&body));
      request.query.sql = std::string(sql);
      DGF_ASSIGN_OR_RETURN(request.query.deadline_seconds, GetDouble(&body));
      // Optional trailing trace id (absent in pre-tracing frames).
      if (!body.empty()) {
        DGF_ASSIGN_OR_RETURN(request.query.trace_id, GetFixed64(&body));
      }
      break;
    }
    case Opcode::kAppend: {
      DGF_ASSIGN_OR_RETURN(std::string_view table, GetLengthPrefixed(&body));
      request.append.table = std::string(table);
      DGF_ASSIGN_OR_RETURN(uint64_t n, GetVarint64(&body));
      // Every row costs at least its one-byte length prefix, so a count
      // beyond the remaining body is corruption — reject it *before*
      // reserving, or a tiny hostile frame claims gigabytes.
      if (n > body.size()) return Status::Corruption("absurd row count");
      request.append.rows.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        DGF_ASSIGN_OR_RETURN(std::string_view row, GetLengthPrefixed(&body));
        request.append.rows.emplace_back(row);
      }
      break;
    }
    case Opcode::kCancel: {
      DGF_ASSIGN_OR_RETURN(request.cancel_target, GetFixed64(&body));
      break;
    }
    case Opcode::kStats:
    case Opcode::kPing:
    case Opcode::kShutdown:
      break;
  }
  if (!body.empty()) return Status::Corruption("trailing request bytes");
  return request;
}

std::string EncodeResponse(const Response& response) {
  std::string body;
  body.push_back(static_cast<char>(response.opcode));
  PutFixed64(&body, response.request_id);
  body.push_back(static_cast<char>(response.code >> 8));
  body.push_back(static_cast<char>(response.code & 0xFF));
  PutLengthPrefixed(&body, response.message);
  if (!response.ok()) return body;
  switch (response.opcode) {
    case Opcode::kQuery:
      EncodeSchema(&body, response.result.schema);
      PutVarint64(&body, response.result.rows.size());
      for (const std::string& row : response.result.rows) {
        PutLengthPrefixed(&body, row);
      }
      EncodeQueryStats(&body, response.result.stats);
      break;
    case Opcode::kAppend:
      PutVarint64(&body, response.rows_appended);
      break;
    case Opcode::kStats:
      PutVarint64(&body, response.stats.size());
      for (const auto& [name, value] : response.stats) {
        PutLengthPrefixed(&body, name);
        PutDouble(&body, value);
      }
      break;
    case Opcode::kCancel:
    case Opcode::kPing:
    case Opcode::kShutdown:
      break;
  }
  return body;
}

Result<Response> DecodeResponse(std::string_view body) {
  Response response;
  DGF_ASSIGN_OR_RETURN(uint8_t opcode, GetByte(&body));
  if (!ValidOpcode(opcode)) return Status::Corruption("unknown opcode");
  response.opcode = static_cast<Opcode>(opcode);
  DGF_ASSIGN_OR_RETURN(response.request_id, GetFixed64(&body));
  DGF_ASSIGN_OR_RETURN(uint8_t hi, GetByte(&body));
  DGF_ASSIGN_OR_RETURN(uint8_t lo, GetByte(&body));
  response.code = static_cast<uint16_t>((hi << 8) | lo);
  DGF_ASSIGN_OR_RETURN(std::string_view message, GetLengthPrefixed(&body));
  response.message = std::string(message);
  if (!response.ok()) {
    if (!body.empty()) return Status::Corruption("trailing response bytes");
    return response;
  }
  switch (response.opcode) {
    case Opcode::kQuery: {
      DGF_ASSIGN_OR_RETURN(response.result.schema, DecodeSchema(&body));
      DGF_ASSIGN_OR_RETURN(uint64_t n, GetVarint64(&body));
      // See DecodeRequest: bound by the bytes actually present before
      // reserving.
      if (n > body.size()) return Status::Corruption("absurd row count");
      response.result.rows.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        DGF_ASSIGN_OR_RETURN(std::string_view row, GetLengthPrefixed(&body));
        response.result.rows.emplace_back(row);
      }
      DGF_ASSIGN_OR_RETURN(response.result.stats, DecodeQueryStats(&body));
      break;
    }
    case Opcode::kAppend: {
      DGF_ASSIGN_OR_RETURN(response.rows_appended, GetVarint64(&body));
      break;
    }
    case Opcode::kStats: {
      DGF_ASSIGN_OR_RETURN(uint64_t n, GetVarint64(&body));
      // Each entry is >= 9 bytes (length prefix + fixed64 double).
      if (n > body.size() / 9) return Status::Corruption("absurd stats arity");
      response.stats.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        DGF_ASSIGN_OR_RETURN(std::string_view name, GetLengthPrefixed(&body));
        DGF_ASSIGN_OR_RETURN(double value, GetDouble(&body));
        response.stats.emplace_back(std::string(name), value);
      }
      break;
    }
    case Opcode::kCancel:
    case Opcode::kPing:
    case Opcode::kShutdown:
      break;
  }
  if (!body.empty()) return Status::Corruption("trailing response bytes");
  return response;
}

Status ResponseStatus(const Response& response) {
  if (response.ok()) return Status::OK();
  return Status::FromCode(StatusCodeFromWire(response.code), response.message);
}

Response MakeErrorResponse(Opcode opcode, uint64_t request_id,
                           const Status& status) {
  Response response;
  response.opcode = opcode;
  response.request_id = request_id;
  response.code = static_cast<uint16_t>(StatusCodeToWire(status.code()));
  response.message = status.message();
  return response;
}

Status WriteFrame(int fd, std::string_view body) {
  if (body.size() > kMaxFrameBytes) {
    return Status::InvalidArgument("frame too large");
  }
  std::string header;
  PutFixed32(&header, static_cast<uint32_t>(body.size()));
  for (std::string_view chunk : {std::string_view(header), body}) {
    size_t sent = 0;
    while (sent < chunk.size()) {
      // MSG_NOSIGNAL: a peer that hung up yields EPIPE, not SIGPIPE.
      const ssize_t n = ::send(fd, chunk.data() + sent, chunk.size() - sent,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(std::string("send: ") + std::strerror(errno));
      }
      sent += static_cast<size_t>(n);
    }
  }
  return Status::OK();
}

namespace {

/// Reads exactly `length` bytes; false on EOF before the first byte when
/// `eof_ok`, Corruption on EOF mid-buffer.
Result<bool> ReadFull(int fd, char* dst, size_t length, bool eof_ok) {
  size_t got = 0;
  while (got < length) {
    const ssize_t n = ::recv(fd, dst + got, length - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_RCVTIMEO expired (SetRecvTimeout): the peer stalled. The stream
        // position is indeterminate mid-frame, so this connection is dead.
        return Status::IOError("recv timed out");
      }
      return Status::IOError(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) {
      if (got == 0 && eof_ok) return false;
      return Status::Corruption("connection closed mid-frame");
    }
    got += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

Result<bool> ReadFrame(int fd, std::string* body) {
  char header[4];
  DGF_ASSIGN_OR_RETURN(bool more,
                       ReadFull(fd, header, sizeof(header), /*eof_ok=*/true));
  if (!more) return false;
  const uint32_t length = DecodeFixed32(header);
  if (length > kMaxFrameBytes) return Status::Corruption("oversized frame");
  body->resize(length);
  DGF_ASSIGN_OR_RETURN(bool got, ReadFull(fd, body->data(), length,
                                          /*eof_ok=*/false));
  (void)got;
  return true;
}

Result<bool> WaitReadable(int fd, double timeout_seconds) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLIN;
  const int timeout_ms =
      timeout_seconds <= 0
          ? 0
          : static_cast<int>(std::min(timeout_seconds * 1e3, 2.0e9)) + 1;
  for (;;) {
    const int n = ::poll(&pfd, 1, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("poll: ") + std::strerror(errno));
    }
    // POLLHUP/POLLERR count as readable: the next recv reports EOF/error.
    return n > 0;
  }
}

Status SetRecvTimeout(int fd, double timeout_seconds) {
  timeval tv{};
  if (timeout_seconds > 0) {
    tv.tv_sec = static_cast<time_t>(timeout_seconds);
    tv.tv_usec = static_cast<suseconds_t>(
        (timeout_seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  }
  if (::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return Status::IOError(std::string("setsockopt(SO_RCVTIMEO): ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace dgf::server
