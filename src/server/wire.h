#ifndef DGF_SERVER_WIRE_H_
#define DGF_SERVER_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "query/executor.h"
#include "table/schema.h"

namespace dgf::server {

/// The query service's length-prefixed binary protocol.
///
/// Every message is one frame: a big-endian fixed32 body length followed by
/// the body. A request body is
///
///   [u8 opcode][fixed64 request_id][opcode-specific payload]
///
/// and a response body is
///
///   [u8 opcode][fixed64 request_id][u16 wire error code]
///   [length-prefixed error message][payload when the code is kOk]
///
/// Request ids are chosen by the client and echoed verbatim; responses may
/// arrive out of request order (QUERY runs asynchronously so a CANCEL on the
/// same connection can overtake it), so clients match on the id. Error codes
/// are the stable `WireErrorCode` table in common/status.h.

/// Frames larger than this are rejected as corruption on both sides.
inline constexpr uint64_t kMaxFrameBytes = 64ULL << 20;

enum class Opcode : uint8_t {
  kQuery = 1,
  kAppend = 2,
  kStats = 3,
  kCancel = 4,
  kPing = 5,
  kShutdown = 6,
};

/// True for the opcodes the decoder knows; unknown bytes are Corruption.
bool ValidOpcode(uint8_t raw);
const char* OpcodeName(Opcode opcode);

struct QueryRequest {
  /// SQL in the parser's dialect (Query::ToSql round-trips through it).
  std::string sql;
  /// Per-query time budget in seconds; <= 0 means no deadline.
  double deadline_seconds = 0;
  /// Distributed trace id; 0 lets the service assign one. Encoded as an
  /// optional trailing fixed64 — frames from peers that predate tracing
  /// simply omit it, and the decoder leaves it 0.
  uint64_t trace_id = 0;
};

struct AppendRequest {
  std::string table;
  /// Rows in FormatRowText form (pipe-separated), typed by the table schema.
  std::vector<std::string> rows;
};

struct Request {
  Opcode opcode = Opcode::kPing;
  uint64_t request_id = 0;
  QueryRequest query;           // kQuery
  AppendRequest append;         // kAppend
  uint64_t cancel_target = 0;   // kCancel: request_id of the query to cancel
};

/// A query result on the wire: schema, text rows, and the per-query stats the
/// executor accounted.
struct QueryResultPayload {
  table::Schema schema;
  /// One FormatRowText line per row.
  std::vector<std::string> rows;
  query::QueryStats stats;
};

struct Response {
  Opcode opcode = Opcode::kPing;
  uint64_t request_id = 0;
  /// A WireErrorCode value; kOk (0) marks success.
  uint16_t code = 0;
  /// Error detail; empty on success.
  std::string message;
  QueryResultPayload result;                           // kQuery
  uint64_t rows_appended = 0;                          // kAppend
  std::vector<std::pair<std::string, double>> stats;   // kStats

  bool ok() const { return code == 0; }
};

std::string EncodeRequest(const Request& request);
Result<Request> DecodeRequest(std::string_view body);

std::string EncodeResponse(const Response& response);
Result<Response> DecodeResponse(std::string_view body);

/// Status carried by a response: OK on success, else the decoded code and
/// message (round-trips through StatusCodeToWire/StatusCodeFromWire).
Status ResponseStatus(const Response& response);

/// Error response for `request` carrying `status`'s wire code and message.
Response MakeErrorResponse(Opcode opcode, uint64_t request_id,
                           const Status& status);

/// Blocking frame I/O over a connected socket. Writes loop over partial
/// sends (EPIPE surfaces as IOError, never SIGPIPE); reads loop over partial
/// recvs. `ReadFrame` returns false on a clean EOF at a frame boundary and
/// Corruption when the peer dies mid-frame.
Status WriteFrame(int fd, std::string_view body);
Result<bool> ReadFrame(int fd, std::string* body);

/// Polls `fd` for readability: true when a byte (or EOF) is ready within
/// `timeout_seconds`, false on timeout. Consumes nothing, so a timed-out
/// caller is still at a frame boundary and can keep waiting later. A
/// `timeout_seconds` <= 0 only checks the instantaneous state.
Result<bool> WaitReadable(int fd, double timeout_seconds);

/// Sets SO_RCVTIMEO so a peer that dies *mid-frame* (accepted our request,
/// sent a partial response, went silent) surfaces as a structured IOError
/// from ReadFrame instead of blocking the reader forever. 0 clears it.
Status SetRecvTimeout(int fd, double timeout_seconds);

}  // namespace dgf::server

#endif  // DGF_SERVER_WIRE_H_
