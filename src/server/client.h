#ifndef DGF_SERVER_CLIENT_H_
#define DGF_SERVER_CLIENT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "server/wire.h"

namespace dgf::server {

/// Client side of the wire protocol. Synchronous calls (Query/Append/...)
/// send one request and block for its response; the Start*/Await pair splits
/// that so a CANCEL can be sent while a query is still running on the same
/// connection. Responses may arrive out of order; `Await` buffers responses
/// for other request ids until their own Await asks for them.
///
/// A client is NOT thread-safe — use one per thread (the load harness does).
class ServerClient {
 public:
  static Result<std::unique_ptr<ServerClient>> ConnectTcp(
      const std::string& host, int port);
  static Result<std::unique_ptr<ServerClient>> ConnectUnix(
      const std::string& path);
  ~ServerClient();

  ServerClient(const ServerClient&) = delete;
  ServerClient& operator=(const ServerClient&) = delete;

  /// Runs one SQL query; `deadline_seconds` <= 0 means no deadline. The
  /// returned response carries the wire code (check `ok()` /
  /// ResponseStatus) plus schema, rows and stats on success.
  Result<Response> Query(const std::string& sql, double deadline_seconds = 0);

  /// Sends a QUERY without waiting; returns its request id for Await/Cancel.
  Result<uint64_t> StartQuery(const std::string& sql,
                              double deadline_seconds = 0);
  /// Sends a CANCEL for `target_request_id`; returns the cancel's own id.
  Result<uint64_t> StartCancel(uint64_t target_request_id);
  /// Blocks until the response for `request_id` arrives.
  Result<Response> Await(uint64_t request_id);

  Result<Response> Append(const std::string& table,
                          const std::vector<std::string>& rows);
  Result<Response> Stats();
  Result<Response> Ping();
  /// Asks the server to drain and stop; the response arrives after every
  /// in-flight query has completed.
  Result<Response> Shutdown();

 private:
  explicit ServerClient(int fd) : fd_(fd) {}

  Result<uint64_t> Send(Request request);
  Result<Response> Call(Request request);

  int fd_;
  uint64_t next_request_id_ = 1;
  std::map<uint64_t, Response> buffered_;
};

}  // namespace dgf::server

#endif  // DGF_SERVER_CLIENT_H_
