#ifndef DGF_SERVER_CLIENT_H_
#define DGF_SERVER_CLIENT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "server/wire.h"

namespace dgf::server {

/// Client side of the wire protocol. Synchronous calls (Query/Append/...)
/// send one request and block for its response; the Start*/Await pair splits
/// that so a CANCEL can be sent while a query is still running on the same
/// connection. Responses may arrive out of order; `Await` buffers responses
/// for other request ids until their own Await asks for them.
///
/// A client is NOT thread-safe — use one per thread (the load harness does).
class ServerClient {
 public:
  /// `connect_timeout_seconds` > 0 bounds the TCP handshake (a dead shard
  /// endpoint fails fast instead of blocking a coordinator's fan-out
  /// thread); <= 0 keeps the kernel's default blocking connect. This is
  /// deliberately distinct from any query deadline, which only starts once
  /// the server has the request.
  static Result<std::unique_ptr<ServerClient>> ConnectTcp(
      const std::string& host, int port, double connect_timeout_seconds = 0);
  static Result<std::unique_ptr<ServerClient>> ConnectUnix(
      const std::string& path);
  ~ServerClient();

  ServerClient(const ServerClient&) = delete;
  ServerClient& operator=(const ServerClient&) = delete;

  /// Runs one SQL query; `deadline_seconds` <= 0 means no deadline. The
  /// returned response carries the wire code (check `ok()` /
  /// ResponseStatus) plus schema, rows and stats on success. `trace_id`
  /// joins the query to a distributed trace (0 lets the server assign one;
  /// the id used comes back in the response stats).
  Result<Response> Query(const std::string& sql, double deadline_seconds = 0,
                         uint64_t trace_id = 0);

  /// Sends a QUERY without waiting; returns its request id for Await/Cancel.
  Result<uint64_t> StartQuery(const std::string& sql,
                              double deadline_seconds = 0,
                              uint64_t trace_id = 0);
  /// Sends a CANCEL for `target_request_id`; returns the cancel's own id.
  Result<uint64_t> StartCancel(uint64_t target_request_id);
  /// Blocks until the response for `request_id` arrives.
  Result<Response> Await(uint64_t request_id);
  /// Like Await but gives up after `timeout_seconds`, returning nullopt.
  /// Nothing is consumed on timeout (the wait polls before reading a frame
  /// header), so the connection stays at a frame boundary and the same id
  /// can be awaited again — a coordinator uses short slices of this to check
  /// its own cancel token between shard responses.
  Result<std::optional<Response>> AwaitFor(uint64_t request_id,
                                           double timeout_seconds);

  /// Bounds every subsequent single recv (frame header or body bytes): a
  /// peer that goes silent mid-frame yields IOError("recv timed out")
  /// instead of hanging this thread. 0 restores blocking reads.
  Status SetRecvTimeout(double timeout_seconds);

  Result<Response> Append(const std::string& table,
                          const std::vector<std::string>& rows);
  Result<Response> Stats();
  Result<Response> Ping();
  /// Asks the server to drain and stop; the response arrives after every
  /// in-flight query has completed.
  Result<Response> Shutdown();

 private:
  explicit ServerClient(int fd) : fd_(fd) {}

  Result<uint64_t> Send(Request request);
  Result<Response> Call(Request request);

  int fd_;
  uint64_t next_request_id_ = 1;
  std::map<uint64_t, Response> buffered_;
};

}  // namespace dgf::server

#endif  // DGF_SERVER_CLIENT_H_
