#include "server/query_service.h"

#include <algorithm>
#include <cctype>

#include "common/stopwatch.h"
#include "dgf/dgf_builder.h"
#include "query/parser.h"
#include "table/table.h"
#include "testing/crash_point.h"

namespace dgf::server {

std::string TableAfterKeyword(std::string_view sql, std::string_view kw) {
  auto lower = [](char c) {
    return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  };
  for (size_t i = 0; i + kw.size() < sql.size(); ++i) {
    bool match = (i == 0 || std::isspace(static_cast<unsigned char>(sql[i - 1])));
    for (size_t j = 0; match && j < kw.size(); ++j) {
      match = lower(sql[i + j]) == kw[j];
    }
    if (!match) continue;
    size_t p = i + kw.size();
    if (p >= sql.size() || !std::isspace(static_cast<unsigned char>(sql[p]))) {
      continue;
    }
    while (p < sql.size() && std::isspace(static_cast<unsigned char>(sql[p]))) {
      ++p;
    }
    size_t end = p;
    while (end < sql.size() &&
           (std::isalnum(static_cast<unsigned char>(sql[end])) ||
            sql[end] == '_')) {
      ++end;
    }
    if (end > p) return std::string(sql.substr(p, end - p));
  }
  return std::string();
}

QueryService::QueryService(Options options)
    : options_(std::move(options)),
      pool_(std::max(1, options_.max_concurrent)) {
  if (options_.metrics != nullptr) {
    metrics_ = options_.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  c_admitted_ = metrics_->GetCounter("queries.admitted");
  c_served_ = metrics_->GetCounter("queries.served");
  c_rejected_ = metrics_->GetCounter("queries.rejected");
  c_cancelled_ = metrics_->GetCounter("queries.cancelled");
  c_deadline_exceeded_ = metrics_->GetCounter("queries.deadline_exceeded");
  c_failed_ = metrics_->GetCounter("queries.failed");
  c_appends_ = metrics_->GetCounter("appends.batches");
  c_rows_appended_ = metrics_->GetCounter("appends.rows");
  c_append_flushes_ = metrics_->GetCounter("appends.flushes");
  g_append_staging_s_ = metrics_->GetGauge("appends.staging_s");
  g_append_reorg_s_ = metrics_->GetGauge("appends.reorg_s");
  c_cache_hits_ = metrics_->GetCounter("cache.hits");
  c_cache_misses_ = metrics_->GetCounter("cache.misses");
  c_records_read_ = metrics_->GetCounter("scan.records_read");
  latency_ = metrics_->GetHistogram("latency");
  metrics_->SetCallback("queries.in_flight", [this] {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<double>(in_flight_);
  });

  query::QueryExecutor::Options exec_options;
  exec_options.dfs = options_.dfs;
  exec_options.split_size = options_.split_size;
  exec_options.worker_threads = std::max(1, options_.query_worker_threads);
  exec_options.metrics = metrics_;
  executor_ = std::make_unique<query::QueryExecutor>(exec_options);
}

QueryService::~QueryService() {
  BeginDrain();
  Drain();
}

void QueryService::RegisterTable(const table::TableDesc& desc) {
  catalog_[desc.name].desc = desc;
  executor_->RegisterTable(desc);
}

void QueryService::RegisterDgfIndex(const std::string& table,
                                    core::DgfIndex* index) {
  catalog_[table].dgf = index;
  executor_->RegisterDgfIndex(table, index);
}

Result<query::Query> QueryService::Parse(const std::string& sql) const {
  const std::string from = TableAfterKeyword(sql, "from");
  if (from.empty()) return Status::InvalidArgument("no FROM table in: " + sql);
  auto it = catalog_.find(from);
  if (it == catalog_.end()) {
    return Status::NotFound("table not registered: " + from);
  }
  const table::Schema* right = nullptr;
  const std::string join = TableAfterKeyword(sql, "join");
  if (!join.empty()) {
    auto jt = catalog_.find(join);
    if (jt == catalog_.end()) {
      return Status::NotFound("join table not registered: " + join);
    }
    right = &jt->second.desc.schema;
  }
  return query::ParseQuery(sql, it->second.desc.schema, right);
}

Status QueryService::SubmitQuery(uint64_t request_id, std::string sql,
                                 double deadline_seconds, uint64_t trace_id,
                                 QueryDone done) {
  auto token = std::make_shared<CancelToken>();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) {
      c_rejected_->Increment();
      return Status::Unavailable("server is draining");
    }
    if (in_flight_ >= options_.max_concurrent + options_.max_pending) {
      c_rejected_->Increment();
      return Status::Unavailable(
          "admission queue full (" + std::to_string(in_flight_) +
          " in flight)");
    }
    if (!tokens_.emplace(request_id, token).second) {
      c_rejected_->Increment();
      return Status::InvalidArgument("duplicate in-flight request id");
    }
    ++in_flight_;
    c_admitted_->Increment();
  }
  if (deadline_seconds > 0) token->SetDeadlineAfter(deadline_seconds);
  // `queued` starts here; its reading when the worker dequeues the query is
  // the admission-wait span of the trace.
  Stopwatch queued;
  pool_.Submit([this, request_id, sql = std::move(sql), trace_id, queued,
                token, done = std::move(done)]() mutable {
    RunQuery(request_id, std::move(sql), trace_id, queued, std::move(token),
             std::move(done));
  });
  return Status::OK();
}

void QueryService::RunQuery(uint64_t request_id, std::string sql,
                            uint64_t trace_id, Stopwatch queued,
                            std::shared_ptr<CancelToken> token,
                            QueryDone done) {
  if (trace_id == 0) trace_id = obs::NextTraceId();
  const double wait_seconds = queued.ElapsedSeconds();
  Stopwatch wall;
  Result<query::QueryResult> result = [&]() -> Result<query::QueryResult> {
    DGF_ASSIGN_OR_RETURN(query::Query q, Parse(sql));
    return executor_->Execute(q, std::nullopt, token.get());
  }();
  const double exec_seconds = wall.ElapsedSeconds();
  if (result.ok()) {
    result->stats.trace_id = trace_id;
    result->stats.spans.insert(
        result->stats.spans.begin(),
        {{"admission_wait", 0.0, wait_seconds},
         {"execute", wait_seconds, exec_seconds}});
    trace_log_.Record({trace_id, sql, wait_seconds + exec_seconds,
                       result->stats.spans});
    c_served_->Increment();
    c_cache_hits_->Increment(result->stats.cache_hits);
    c_cache_misses_->Increment(result->stats.cache_misses);
    c_records_read_->Increment(result->stats.records_read);
  } else if (result.status().IsCancelled()) {
    c_cancelled_->Increment();
  } else if (result.status().IsDeadlineExceeded()) {
    c_deadline_exceeded_->Increment();
  } else {
    c_failed_->Increment();
  }
  latency_->Observe(exec_seconds);
  {
    std::lock_guard<std::mutex> lock(mu_);
    tokens_.erase(request_id);
    --in_flight_;
    if (in_flight_ == 0) drained_.notify_all();
  }
  done(std::move(result));
}

bool QueryService::CancelQuery(uint64_t request_id) {
  std::shared_ptr<CancelToken> token;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tokens_.find(request_id);
    if (it == tokens_.end()) return false;
    token = it->second;
  }
  token->Cancel();
  return true;
}

Result<uint64_t> QueryService::Append(const std::string& table,
                                      const std::vector<std::string>& rows) {
  auto it = catalog_.find(table);
  if (it == catalog_.end()) {
    return Status::NotFound("table not registered: " + table);
  }
  TableEntry& entry = it->second;
  if (entry.dgf == nullptr) {
    return Status::NotSupported("APPEND requires a DGF index on " + table);
  }

  // Double-buffered group commit. Join the open group, then either ride a
  // leader's flush (our group publishes while we wait) or become the leader
  // ourselves. A leader blocks the next leader only while *staging* its
  // group's batch table; the reorganize+publish step runs after the staging
  // flag clears, so group N+1 stages while group N publishes and group N+2
  // accumulates. K concurrent calls still cost one staging table, one
  // slice-file extension, and one atomic WriteBatch publish per flush — not
  // per call — but the stages now overlap instead of running end-to-end.
  std::shared_ptr<AppendGroup> group;
  int batch_id;
  {
    // Appends are admitted even while draining (they are the background
    // load the drain is waiting out queries against), but still count.
    std::unique_lock<std::mutex> lock(mu_);
    c_appends_->Increment();
    c_rows_appended_->Increment(rows.size());
    if (entry.open_group == nullptr) {
      entry.open_group = std::make_shared<AppendGroup>();
    }
    group = entry.open_group;
    group->rows.insert(group->rows.end(), rows.begin(), rows.end());
    // Leader admission: the pipeline is two deep — one batch between
    // staged and published, one batch staging. While it is full, arriving
    // calls accumulate in the open group instead of claiming batches of
    // their own; that backpressure is what makes groups form. A call may
    // lead only while its group is still the open one — once a leader
    // claims the group, the rest of its members wait for done (their rows
    // are the leader's cargo).
    append_cv_.wait(lock, [&] {
      return group->done ||
             (entry.open_group == group && !entry.staging &&
              entry.append_batches - entry.publish_turn < 2);
    });
    if (group->done) {
      // A leader flushed our group for us; its publish covered our rows.
      DGF_RETURN_IF_ERROR(group->status);
      return static_cast<uint64_t>(rows.size());
    }
    // No staging in progress and our group not yet taken: lead it. Closing
    // the group here (before dropping mu_) means rows arriving during our
    // flush start the next group instead of mutating the one being written.
    entry.open_group = nullptr;
    entry.staging = true;
    batch_id = entry.append_batches++;
  }

  // Stage 1 (overlaps the previous group's publish): write the batch table.
  Stopwatch staging_watch;
  table::TableDesc batch;
  Status flushed = StageAppendGroup(entry, batch_id, group->rows, &batch);
  g_append_staging_s_->Add(staging_watch.ElapsedSeconds());
  {
    std::lock_guard<std::mutex> lock(mu_);
    entry.staging = false;
  }
  // Staging is free again: wake the next group's leader so it stages while
  // we wait for our publish turn below.
  append_cv_.notify_all();

  if (flushed.ok()) {
    // Stage 2: batches enter the index strictly in leader order, so a
    // staged-early batch waits for its predecessor's publish.
    {
      std::unique_lock<std::mutex> lock(mu_);
      append_cv_.wait(lock, [&] { return entry.publish_turn == batch_id; });
    }
    Stopwatch reorg_watch;
    flushed = ReorganizeAppendBatch(entry, batch);
    g_append_reorg_s_->Add(reorg_watch.ElapsedSeconds());
  } else {
    // The turn must still be claimed, or every later batch deadlocks.
    std::unique_lock<std::mutex> lock(mu_);
    append_cv_.wait(lock, [&] { return entry.publish_turn == batch_id; });
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    group->done = true;
    group->status = flushed;
    entry.publish_turn = batch_id + 1;
    c_append_flushes_->Increment();
  }
  append_cv_.notify_all();
  DGF_RETURN_IF_ERROR(flushed);
  return static_cast<uint64_t>(rows.size());
}

Status QueryService::StageAppendGroup(const TableEntry& entry, int batch_id,
                                      const std::vector<std::string>& rows,
                                      table::TableDesc* batch) {
  DGF_CRASH_POINT("dgf.append.group.before_flush");
  // Stage the group as its own table (the paper's "verified temporary
  // files"). Batch directories are per-table sequential (batch_id was
  // claimed under mu_), so concurrent stagings never collide; no index
  // state is read or written here.
  *batch = table::TableDesc{
      entry.desc.name + "_append" + std::to_string(batch_id),
      entry.desc.schema, table::FileFormat::kText,
      entry.desc.dir + "_append" + std::to_string(batch_id)};
  DGF_ASSIGN_OR_RETURN(auto writer,
                       table::TableWriter::Create(options_.dfs, *batch));
  for (const std::string& line : rows) {
    DGF_ASSIGN_OR_RETURN(table::Row row,
                         table::ParseRowText(line, batch->schema));
    DGF_RETURN_IF_ERROR(writer->Append(row));
  }
  return writer->Close();
}

Status QueryService::ReorganizeAppendBatch(const TableEntry& entry,
                                           const table::TableDesc& batch) {
  exec::JobRunner::Options job;
  job.worker_threads = std::max(1, options_.query_worker_threads);
  // One slice file per flush: the whole group extends the index by a single
  // data-file write, whatever the group's size.
  job.num_reducers = 1;
  auto appended =
      core::DgfBuilder::Append(entry.dgf, batch, job, options_.split_size);
  if (appended.ok()) {
    // Surface the builder's per-stage timers (map/shuffle/publish/...) as
    // cumulative gauges, so a scrape shows where append time goes.
    for (const auto& [stage, seconds] : appended->stage_seconds.Sorted()) {
      metrics_->GetGauge("build." + stage + "_s")->Add(seconds);
    }
  }
  return appended.status();
}

std::vector<std::pair<std::string, double>> QueryService::StatsSnapshot()
    const {
  return StatsFromRegistry(metrics_);
}

std::vector<std::pair<std::string, double>> StatsFromRegistry(
    const obs::MetricsRegistry* metrics) {
  auto out = metrics->Snapshot();
  // Legacy aliases: the snapshot already carries the raw series
  // (cache.hits/misses, latency.count/.p50...in seconds); these derived
  // names predate the registry and stay for dashboards and tests.
  double hits = 0;
  double misses = 0;
  double p50 = 0, p95 = 0, p99 = 0, samples = 0;
  for (const auto& [name, value] : out) {
    if (name == "cache.hits") hits = value;
    if (name == "cache.misses") misses = value;
    if (name == "latency.count") samples = value;
    if (name == "latency.p50") p50 = value;
    if (name == "latency.p95") p95 = value;
    if (name == "latency.p99") p99 = value;
  }
  const double lookups = hits + misses;
  out.emplace_back("cache.hit_rate", lookups > 0 ? hits / lookups : 0.0);
  out.emplace_back("latency.samples", samples);
  out.emplace_back("latency.p50_ms", p50 * 1e3);
  out.emplace_back("latency.p95_ms", p95 * 1e3);
  out.emplace_back("latency.p99_ms", p99 * 1e3);
  std::sort(out.begin(), out.end());
  return out;
}

void QueryService::BeginDrain() {
  std::lock_guard<std::mutex> lock(mu_);
  draining_ = true;
}

void QueryService::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drained_.wait(lock, [this] { return in_flight_ == 0; });
}

}  // namespace dgf::server
