#include "server/query_service.h"

#include <algorithm>
#include <cctype>

#include "common/stopwatch.h"
#include "dgf/dgf_builder.h"
#include "query/parser.h"
#include "table/table.h"
#include "testing/crash_point.h"

namespace dgf::server {

std::string TableAfterKeyword(std::string_view sql, std::string_view kw) {
  auto lower = [](char c) {
    return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  };
  for (size_t i = 0; i + kw.size() < sql.size(); ++i) {
    bool match = (i == 0 || std::isspace(static_cast<unsigned char>(sql[i - 1])));
    for (size_t j = 0; match && j < kw.size(); ++j) {
      match = lower(sql[i + j]) == kw[j];
    }
    if (!match) continue;
    size_t p = i + kw.size();
    if (p >= sql.size() || !std::isspace(static_cast<unsigned char>(sql[p]))) {
      continue;
    }
    while (p < sql.size() && std::isspace(static_cast<unsigned char>(sql[p]))) {
      ++p;
    }
    size_t end = p;
    while (end < sql.size() &&
           (std::isalnum(static_cast<unsigned char>(sql[end])) ||
            sql[end] == '_')) {
      ++end;
    }
    if (end > p) return std::string(sql.substr(p, end - p));
  }
  return std::string();
}

namespace {

double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

QueryService::QueryService(Options options)
    : options_(std::move(options)),
      pool_(std::max(1, options_.max_concurrent)) {
  query::QueryExecutor::Options exec_options;
  exec_options.dfs = options_.dfs;
  exec_options.split_size = options_.split_size;
  exec_options.worker_threads = std::max(1, options_.query_worker_threads);
  executor_ = std::make_unique<query::QueryExecutor>(exec_options);
}

QueryService::~QueryService() {
  BeginDrain();
  Drain();
}

void QueryService::RegisterTable(const table::TableDesc& desc) {
  catalog_[desc.name].desc = desc;
  executor_->RegisterTable(desc);
}

void QueryService::RegisterDgfIndex(const std::string& table,
                                    core::DgfIndex* index) {
  catalog_[table].dgf = index;
  executor_->RegisterDgfIndex(table, index);
}

Result<query::Query> QueryService::Parse(const std::string& sql) const {
  const std::string from = TableAfterKeyword(sql, "from");
  if (from.empty()) return Status::InvalidArgument("no FROM table in: " + sql);
  auto it = catalog_.find(from);
  if (it == catalog_.end()) {
    return Status::NotFound("table not registered: " + from);
  }
  const table::Schema* right = nullptr;
  const std::string join = TableAfterKeyword(sql, "join");
  if (!join.empty()) {
    auto jt = catalog_.find(join);
    if (jt == catalog_.end()) {
      return Status::NotFound("join table not registered: " + join);
    }
    right = &jt->second.desc.schema;
  }
  return query::ParseQuery(sql, it->second.desc.schema, right);
}

Status QueryService::SubmitQuery(uint64_t request_id, std::string sql,
                                 double deadline_seconds, QueryDone done) {
  auto token = std::make_shared<CancelToken>();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) {
      ++rejected_;
      return Status::Unavailable("server is draining");
    }
    if (in_flight_ >= options_.max_concurrent + options_.max_pending) {
      ++rejected_;
      return Status::Unavailable(
          "admission queue full (" + std::to_string(in_flight_) +
          " in flight)");
    }
    if (!tokens_.emplace(request_id, token).second) {
      ++rejected_;
      return Status::InvalidArgument("duplicate in-flight request id");
    }
    ++in_flight_;
    ++admitted_;
  }
  if (deadline_seconds > 0) token->SetDeadlineAfter(deadline_seconds);
  pool_.Submit([this, request_id, sql = std::move(sql), token,
                done = std::move(done)]() mutable {
    RunQuery(request_id, std::move(sql), std::move(token), std::move(done));
  });
  return Status::OK();
}

void QueryService::RunQuery(uint64_t request_id, std::string sql,
                            std::shared_ptr<CancelToken> token,
                            QueryDone done) {
  Stopwatch wall;
  Result<query::QueryResult> result = [&]() -> Result<query::QueryResult> {
    DGF_ASSIGN_OR_RETURN(query::Query q, Parse(sql));
    return executor_->Execute(q, std::nullopt, token.get());
  }();
  {
    std::lock_guard<std::mutex> lock(mu_);
    tokens_.erase(request_id);
    --in_flight_;
    if (result.ok()) {
      ++served_;
      cache_hits_ += result->stats.cache_hits;
      cache_misses_ += result->stats.cache_misses;
      records_read_ += result->stats.records_read;
    } else if (result.status().IsCancelled()) {
      ++cancelled_;
    } else if (result.status().IsDeadlineExceeded()) {
      ++deadline_exceeded_;
    } else {
      ++failed_;
    }
    const double seconds = wall.ElapsedSeconds();
    if (latencies_.size() < kLatencyWindow) {
      latencies_.push_back(seconds);
    } else {
      latencies_[latency_next_] = seconds;
      latency_next_ = (latency_next_ + 1) % kLatencyWindow;
    }
    ++latency_total_;
    if (in_flight_ == 0) drained_.notify_all();
  }
  done(std::move(result));
}

bool QueryService::CancelQuery(uint64_t request_id) {
  std::shared_ptr<CancelToken> token;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tokens_.find(request_id);
    if (it == tokens_.end()) return false;
    token = it->second;
  }
  token->Cancel();
  return true;
}

Result<uint64_t> QueryService::Append(const std::string& table,
                                      const std::vector<std::string>& rows) {
  auto it = catalog_.find(table);
  if (it == catalog_.end()) {
    return Status::NotFound("table not registered: " + table);
  }
  TableEntry& entry = it->second;
  if (entry.dgf == nullptr) {
    return Status::NotSupported("APPEND requires a DGF index on " + table);
  }

  // Double-buffered group commit. Join the open group, then either ride a
  // leader's flush (our group publishes while we wait) or become the leader
  // ourselves. A leader blocks the next leader only while *staging* its
  // group's batch table; the reorganize+publish step runs after the staging
  // flag clears, so group N+1 stages while group N publishes and group N+2
  // accumulates. K concurrent calls still cost one staging table, one
  // slice-file extension, and one atomic WriteBatch publish per flush — not
  // per call — but the stages now overlap instead of running end-to-end.
  std::shared_ptr<AppendGroup> group;
  int batch_id;
  {
    // Appends are admitted even while draining (they are the background
    // load the drain is waiting out queries against), but still count.
    std::unique_lock<std::mutex> lock(mu_);
    ++appends_;
    rows_appended_ += rows.size();
    if (entry.open_group == nullptr) {
      entry.open_group = std::make_shared<AppendGroup>();
    }
    group = entry.open_group;
    group->rows.insert(group->rows.end(), rows.begin(), rows.end());
    // Leader admission: the pipeline is two deep — one batch between
    // staged and published, one batch staging. While it is full, arriving
    // calls accumulate in the open group instead of claiming batches of
    // their own; that backpressure is what makes groups form. A call may
    // lead only while its group is still the open one — once a leader
    // claims the group, the rest of its members wait for done (their rows
    // are the leader's cargo).
    append_cv_.wait(lock, [&] {
      return group->done ||
             (entry.open_group == group && !entry.staging &&
              entry.append_batches - entry.publish_turn < 2);
    });
    if (group->done) {
      // A leader flushed our group for us; its publish covered our rows.
      DGF_RETURN_IF_ERROR(group->status);
      return static_cast<uint64_t>(rows.size());
    }
    // No staging in progress and our group not yet taken: lead it. Closing
    // the group here (before dropping mu_) means rows arriving during our
    // flush start the next group instead of mutating the one being written.
    entry.open_group = nullptr;
    entry.staging = true;
    batch_id = entry.append_batches++;
  }

  // Stage 1 (overlaps the previous group's publish): write the batch table.
  Stopwatch staging_watch;
  table::TableDesc batch;
  Status flushed = StageAppendGroup(entry, batch_id, group->rows, &batch);
  const double staging_seconds = staging_watch.ElapsedSeconds();
  {
    std::lock_guard<std::mutex> lock(mu_);
    entry.staging = false;
    append_staging_seconds_ += staging_seconds;
  }
  // Staging is free again: wake the next group's leader so it stages while
  // we wait for our publish turn below.
  append_cv_.notify_all();

  if (flushed.ok()) {
    // Stage 2: batches enter the index strictly in leader order, so a
    // staged-early batch waits for its predecessor's publish.
    {
      std::unique_lock<std::mutex> lock(mu_);
      append_cv_.wait(lock, [&] { return entry.publish_turn == batch_id; });
    }
    Stopwatch reorg_watch;
    flushed = ReorganizeAppendBatch(entry, batch);
    const double reorg_seconds = reorg_watch.ElapsedSeconds();
    std::lock_guard<std::mutex> lock(mu_);
    append_reorg_seconds_ += reorg_seconds;
  } else {
    // The turn must still be claimed, or every later batch deadlocks.
    std::unique_lock<std::mutex> lock(mu_);
    append_cv_.wait(lock, [&] { return entry.publish_turn == batch_id; });
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    group->done = true;
    group->status = flushed;
    entry.publish_turn = batch_id + 1;
    ++append_flushes_;
  }
  append_cv_.notify_all();
  DGF_RETURN_IF_ERROR(flushed);
  return static_cast<uint64_t>(rows.size());
}

Status QueryService::StageAppendGroup(const TableEntry& entry, int batch_id,
                                      const std::vector<std::string>& rows,
                                      table::TableDesc* batch) {
  DGF_CRASH_POINT("dgf.append.group.before_flush");
  // Stage the group as its own table (the paper's "verified temporary
  // files"). Batch directories are per-table sequential (batch_id was
  // claimed under mu_), so concurrent stagings never collide; no index
  // state is read or written here.
  *batch = table::TableDesc{
      entry.desc.name + "_append" + std::to_string(batch_id),
      entry.desc.schema, table::FileFormat::kText,
      entry.desc.dir + "_append" + std::to_string(batch_id)};
  DGF_ASSIGN_OR_RETURN(auto writer,
                       table::TableWriter::Create(options_.dfs, *batch));
  for (const std::string& line : rows) {
    DGF_ASSIGN_OR_RETURN(table::Row row,
                         table::ParseRowText(line, batch->schema));
    DGF_RETURN_IF_ERROR(writer->Append(row));
  }
  return writer->Close();
}

Status QueryService::ReorganizeAppendBatch(const TableEntry& entry,
                                           const table::TableDesc& batch) {
  exec::JobRunner::Options job;
  job.worker_threads = std::max(1, options_.query_worker_threads);
  // One slice file per flush: the whole group extends the index by a single
  // data-file write, whatever the group's size.
  job.num_reducers = 1;
  return core::DgfBuilder::Append(entry.dgf, batch, job, options_.split_size)
      .status();
}

std::vector<std::pair<std::string, double>> QueryService::StatsSnapshot()
    const {
  std::vector<std::pair<std::string, double>> out;
  std::vector<double> window;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.emplace_back("queries.admitted", static_cast<double>(admitted_));
    out.emplace_back("queries.served", static_cast<double>(served_));
    out.emplace_back("queries.rejected", static_cast<double>(rejected_));
    out.emplace_back("queries.cancelled", static_cast<double>(cancelled_));
    out.emplace_back("queries.deadline_exceeded",
                     static_cast<double>(deadline_exceeded_));
    out.emplace_back("queries.failed", static_cast<double>(failed_));
    out.emplace_back("queries.in_flight", static_cast<double>(in_flight_));
    out.emplace_back("appends.batches", static_cast<double>(appends_));
    out.emplace_back("appends.rows", static_cast<double>(rows_appended_));
    out.emplace_back("appends.flushes", static_cast<double>(append_flushes_));
    out.emplace_back("appends.staging_s", append_staging_seconds_);
    out.emplace_back("appends.reorg_s", append_reorg_seconds_);
    out.emplace_back("cache.hits", static_cast<double>(cache_hits_));
    out.emplace_back("cache.misses", static_cast<double>(cache_misses_));
    const double lookups = static_cast<double>(cache_hits_ + cache_misses_);
    out.emplace_back("cache.hit_rate",
                     lookups > 0 ? static_cast<double>(cache_hits_) / lookups
                                 : 0.0);
    out.emplace_back("scan.records_read", static_cast<double>(records_read_));
    out.emplace_back("latency.samples", static_cast<double>(latency_total_));
    window = latencies_;
  }
  std::sort(window.begin(), window.end());
  out.emplace_back("latency.p50_ms", Percentile(window, 0.50) * 1e3);
  out.emplace_back("latency.p95_ms", Percentile(window, 0.95) * 1e3);
  out.emplace_back("latency.p99_ms", Percentile(window, 0.99) * 1e3);
  return out;
}

void QueryService::BeginDrain() {
  std::lock_guard<std::mutex> lock(mu_);
  draining_ = true;
}

void QueryService::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drained_.wait(lock, [this] { return in_flight_ == 0; });
}

}  // namespace dgf::server
