#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "table/schema.h"

namespace dgf::server {
namespace {

Result<int> ListenTcp(int port, int* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError(std::string("socket: ") + std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError(std::string("bind: ") + std::strerror(err));
  }
  if (::listen(fd, 64) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError(std::string("listen: ") + std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError(std::string("getsockname: ") + std::strerror(err));
  }
  *bound_port = ntohs(bound.sin_port);
  return fd;
}

Result<int> ListenUnix(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("unix socket path too long: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError(std::string("socket: ") + std::strerror(errno));
  ::unlink(path.c_str());
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError(std::string("bind ") + path + ": " +
                           std::strerror(err));
  }
  if (::listen(fd, 64) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError(std::string("listen: ") + std::strerror(err));
  }
  return fd;
}

}  // namespace

std::atomic<uint64_t> Server::next_service_id_{1};

Result<std::unique_ptr<Server>> Server::Start(Options options) {
  if (options.service == nullptr) {
    return Status::InvalidArgument("Server requires a WireService");
  }
  std::unique_ptr<Server> server(new Server(options));
  if (!options.unix_path.empty()) {
    DGF_ASSIGN_OR_RETURN(server->listen_fd_, ListenUnix(options.unix_path));
  } else {
    DGF_ASSIGN_OR_RETURN(server->listen_fd_,
                         ListenTcp(options.port, &server->port_));
  }
  {
    std::lock_guard<std::mutex> lock(server->mu_);
    server->threads_.emplace_back([s = server.get()] { s->AcceptLoop(); });
  }
  return server;
}

Server::~Server() { Shutdown(); }

void Server::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (stopping_.load(std::memory_order_acquire)) {
      if (fd >= 0) ::close(fd);
      return;
    }
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket closed or broken
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    std::lock_guard<std::mutex> lock(mu_);
    if (torn_down_) {
      ::close(fd);
      return;
    }
    connections_.push_back(conn);
    threads_.emplace_back([this, conn] { HandleConnection(conn); });
  }
}

void Server::HandleConnection(const std::shared_ptr<Connection>& conn) {
  std::string body;
  for (;;) {
    auto more = ReadFrame(conn->fd, &body);
    if (!more.ok() || !*more) break;
    if (!HandleRequest(conn, body)) break;
  }
  // Mark closed before closing the descriptor so a query completion racing
  // in never writes to a recycled fd.
  std::lock_guard<std::mutex> lock(conn->write_mu);
  conn->open.store(false, std::memory_order_release);
  ::close(conn->fd);
  conn->fd = -1;
}

void Server::WriteResponse(Connection& conn, const Response& response) {
  std::lock_guard<std::mutex> lock(conn.write_mu);
  if (!conn.open.load(std::memory_order_acquire)) return;
  if (!server::WriteFrame(conn.fd, EncodeResponse(response)).ok()) {
    // The peer hung up; readers notice on their next recv. Suppress further
    // writes so a batch of completions does not spam a dead socket.
    conn.open.store(false, std::memory_order_release);
  }
}

bool Server::HandleRequest(const std::shared_ptr<Connection>& conn,
                           const std::string& body) {
  auto decoded = DecodeRequest(body);
  if (!decoded.ok()) return false;  // protocol error: drop the connection
  const Request& request = *decoded;
  WireService* service = options_.service;

  switch (request.opcode) {
    case Opcode::kQuery: {
      const uint64_t id = request.request_id;
      const uint64_t service_id =
          next_service_id_.fetch_add(1, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lock(conn->inflight_mu);
        if (!conn->inflight.emplace(id, service_id).second) {
          WriteResponse(
              *conn,
              MakeErrorResponse(
                  Opcode::kQuery, id,
                  Status::InvalidArgument("duplicate in-flight request id")));
          return true;
        }
      }
      // Completion writes the response from a worker thread; the connection
      // is kept alive by the shared_ptr captured here.
      Status admitted = service->SubmitQuery(
          service_id, request.query.sql, request.query.deadline_seconds,
          request.query.trace_id,
          [this, conn, id](Result<query::QueryResult> result) {
            {
              std::lock_guard<std::mutex> lock(conn->inflight_mu);
              conn->inflight.erase(id);
            }
            Response response;
            response.opcode = Opcode::kQuery;
            response.request_id = id;
            if (!result.ok()) {
              response = MakeErrorResponse(Opcode::kQuery, id, result.status());
            } else {
              response.result.schema = result->schema;
              response.result.rows.reserve(result->rows.size());
              for (const table::Row& row : result->rows) {
                response.result.rows.push_back(table::FormatRowText(row));
              }
              response.result.stats = result->stats;
            }
            WriteResponse(*conn, response);
          });
      if (!admitted.ok()) {
        {
          std::lock_guard<std::mutex> lock(conn->inflight_mu);
          conn->inflight.erase(id);
        }
        WriteResponse(*conn, MakeErrorResponse(Opcode::kQuery, id, admitted));
      }
      return true;
    }
    case Opcode::kAppend: {
      Response response;
      response.opcode = Opcode::kAppend;
      response.request_id = request.request_id;
      auto appended = service->Append(request.append.table,
                                      request.append.rows);
      if (appended.ok()) {
        response.rows_appended = *appended;
      } else {
        response = MakeErrorResponse(Opcode::kAppend, request.request_id,
                                     appended.status());
      }
      WriteResponse(*conn, response);
      return true;
    }
    case Opcode::kStats: {
      Response response;
      response.opcode = Opcode::kStats;
      response.request_id = request.request_id;
      response.stats = service->StatsSnapshot();
      WriteResponse(*conn, response);
      return true;
    }
    case Opcode::kCancel: {
      // The target id is scoped to this connection: one client cannot cancel
      // another client's queries.
      uint64_t service_id = 0;
      {
        std::lock_guard<std::mutex> lock(conn->inflight_mu);
        auto it = conn->inflight.find(request.cancel_target);
        if (it != conn->inflight.end()) service_id = it->second;
      }
      const bool found = service_id != 0 && service->CancelQuery(service_id);
      Response response;
      if (found) {
        response.opcode = Opcode::kCancel;
        response.request_id = request.request_id;
      } else {
        response = MakeErrorResponse(
            Opcode::kCancel, request.request_id,
            Status::NotFound("no in-flight query with that id"));
      }
      WriteResponse(*conn, response);
      return true;
    }
    case Opcode::kPing: {
      Response response;
      response.opcode = Opcode::kPing;
      response.request_id = request.request_id;
      WriteResponse(*conn, response);
      return true;
    }
    case Opcode::kShutdown: {
      // Drain before acking: the ack is the signal that every in-flight
      // query has completed and its response has been written. An endpoint
      // that shares its service with siblings (drain_service_on_shutdown
      // false) must not poison them, so there SHUTDOWN closes just this
      // endpoint and the ack only means "endpoint closing"; the owner
      // drains once every endpoint is down.
      if (options_.drain_service_on_shutdown) {
        service->BeginDrain();
        service->Drain();
      }
      Response response;
      response.opcode = Opcode::kShutdown;
      response.request_id = request.request_id;
      WriteResponse(*conn, response);
      SignalShutdown();
      return true;
    }
  }
  return false;
}

void Server::SignalShutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  shutdown_requested_ = true;
  shutdown_cv_.notify_all();
}

void Server::WaitShutdown() {
  std::unique_lock<std::mutex> lock(mu_);
  shutdown_cv_.wait(lock, [this] { return shutdown_requested_; });
}

void Server::Shutdown() {
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (torn_down_) return;
    torn_down_ = true;
    shutdown_requested_ = true;
    shutdown_cv_.notify_all();
    threads.swap(threads_);
    connections.swap(connections_);
  }
  stopping_.store(true, std::memory_order_release);
  const int listen_fd = listen_fd_.exchange(-1);
  if (listen_fd >= 0) {
    ::shutdown(listen_fd, SHUT_RDWR);
    ::close(listen_fd);
  }

  if (options_.drain_service_on_shutdown) options_.service->BeginDrain();
  // Wake every connection reader; in-flight queries still complete (their
  // responses go to whatever sockets remain writable) before Drain returns.
  for (const auto& conn : connections) {
    std::lock_guard<std::mutex> lock(conn->write_mu);
    if (conn->open.load(std::memory_order_acquire)) {
      ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  // Without the drain (shared service), in-flight completions race the
  // thread join harmlessly: each writes through its connection's suppressed
  // writer and the Connection outlives us via the callback's shared_ptr.
  if (options_.drain_service_on_shutdown) options_.service->Drain();
  for (std::thread& thread : threads) thread.join();
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
}

}  // namespace dgf::server
