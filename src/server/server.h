#ifndef DGF_SERVER_SERVER_H_
#define DGF_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "server/service_interface.h"
#include "server/wire.h"

namespace dgf::server {

/// The wire front end: accepts TCP (127.0.0.1) or Unix-socket connections
/// and speaks the framed protocol in wire.h against a WireService (a local
/// QueryService, or a coord::Coordinator fronting a cluster of them).
///
/// One reader thread per connection decodes requests; QUERY dispatches
/// asynchronously into the service's worker pool, with the response written
/// from the completion callback under the connection's write lock — so a
/// CANCEL sent on the same connection can reach a query already running, and
/// responses interleave by request id rather than request order. APPEND,
/// STATS, CANCEL and PING are answered inline on the reader thread.
///
/// SHUTDOWN stops admission, drains in-flight queries, acks the requester,
/// and wakes `WaitShutdown()`; the owner then tears the server down (or just
/// destroys it — the destructor performs the same teardown).
class Server {
 public:
  struct Options {
    /// Borrowed; must outlive the server.
    WireService* service = nullptr;
    /// Non-empty: listen on this Unix socket path instead of TCP.
    std::string unix_path;
    /// TCP port on 127.0.0.1; 0 picks an ephemeral port (see `port()`).
    int port = 0;
    /// Whether shutting this server down drains the service (stop
    /// admission, wait for in-flight queries) first. Set false when several
    /// servers front the SAME service — a shard's primary and replica
    /// endpoints — so killing one endpoint does not mark the shared service
    /// draining and poison its siblings. In-flight completions then land on
    /// the closed connection's suppressed writer, which is already how a
    /// vanished peer is handled. A client-sent SHUTDOWN request follows the
    /// same rule: it drains the whole service on an owning endpoint, and
    /// closes just this endpoint on a shared one (the owner drains after
    /// the last endpoint is down).
    bool drain_service_on_shutdown = true;
  };

  static Result<std::unique_ptr<Server>> Start(Options options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bound TCP port (0 when listening on a Unix socket).
  int port() const { return port_; }

  /// Blocks until a SHUTDOWN request completes (or `Shutdown()` is called).
  void WaitShutdown();

  /// Stops accepting, drains the service, closes every connection, joins all
  /// threads. Idempotent.
  void Shutdown();

 private:
  /// Shared between the reader thread and in-flight query completions; the
  /// write lock serializes interleaved responses and `open` suppresses
  /// writes after the peer is gone.
  struct Connection {
    int fd = -1;
    std::mutex write_mu;
    std::atomic<bool> open{true};
    /// Wire request ids are chosen by the client and only unique per
    /// connection; the service needs globally unique keys, so each admitted
    /// query gets a fresh service id and this map routes CANCELs for the
    /// connection's own queries.
    std::mutex inflight_mu;
    std::map<uint64_t, uint64_t> inflight;  // wire id -> service id
  };

  explicit Server(Options options) : options_(options) {}

  void AcceptLoop();
  void HandleConnection(const std::shared_ptr<Connection>& conn);
  /// Decodes and serves one request; false when the connection should close.
  bool HandleRequest(const std::shared_ptr<Connection>& conn,
                     const std::string& body);
  void WriteResponse(Connection& conn, const Response& response);
  void SignalShutdown();

  Options options_;
  /// Atomic: Shutdown() invalidates it while the accept thread reads it.
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  /// Process-wide: several servers can front the SAME service (a shard's
  /// primary + replica endpoints), and the service keys its in-flight
  /// queries by this id — per-server counters would collide.
  static std::atomic<uint64_t> next_service_id_;

  std::mutex mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
  bool torn_down_ = false;
  std::vector<std::shared_ptr<Connection>> connections_;
  std::vector<std::thread> threads_;  // accept thread + one per connection
};

}  // namespace dgf::server

#endif  // DGF_SERVER_SERVER_H_
