#ifndef DGF_SERVER_QUERY_SERVICE_H_
#define DGF_SERVER_QUERY_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/cancel.h"
#include "common/result.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "dgf/dgf_index.h"
#include "fs/mini_dfs.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/executor.h"
#include "server/service_interface.h"

namespace dgf::server {

/// Finds the identifier following keyword `kw` ("from"/"join") in `sql`,
/// case-insensitively; empty when absent. The parser proper needs the table
/// schema up front to type literals, so catalog holders (QueryService, the
/// coordinator) peek at the table names first.
std::string TableAfterKeyword(std::string_view sql, std::string_view kw);

/// Registry snapshot plus the legacy derived series (cache.hit_rate,
/// latency.samples, latency.p50_ms/p95_ms/p99_ms) predating the registry.
/// Shared by QueryService and the coordinator so both STATS surfaces keep
/// the same name shape.
std::vector<std::pair<std::string, double>> StatsFromRegistry(
    const obs::MetricsRegistry* metrics);

/// The server-side query engine: a catalog of tables and indexes, a worker
/// pool bounding query concurrency, admission control bounding the pending
/// queue, and per-query cancellation tokens.
///
/// Concurrency model: the catalog is frozen before serving (registration is
/// not thread-safe against queries); query execution shares one
/// QueryExecutor, whose read path is snapshot-isolated (each DGF query pins
/// one index epoch), so concurrent queries and appends never tear a result.
/// Appends serialize on the target index's mutation lock inside
/// DgfBuilder::Append.
///
/// Observability: every counter lives in an obs::MetricsRegistry (injected
/// via Options, or a private one), latencies feed a log-bucketed histogram,
/// and each query leaves a trace (admission wait + execution spans) in the
/// /trace ring buffer.
class QueryService : public WireService {
 public:
  struct Options {
    std::shared_ptr<fs::MiniDfs> dfs;
    /// Queries executing at once (worker pool size).
    int max_concurrent = 4;
    /// Admitted-but-not-running queries beyond that; one more is
    /// Unavailable (the structured backpressure signal).
    int max_pending = 16;
    /// Threads inside each query's scan job.
    int query_worker_threads = 2;
    uint64_t split_size = 0;
    /// Registry the service's metrics land in. Null gives the service a
    /// private registry (tests build many services in one process; merging
    /// their counters into one Default() would make assertions racy).
    /// dgf_serverd passes obs::MetricsRegistry::Default() so the HTTP
    /// exporter sees everything.
    obs::MetricsRegistry* metrics = nullptr;
  };

  explicit QueryService(Options options);
  /// Drains in-flight queries (equivalent to BeginDrain + Drain).
  ~QueryService() override;

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Catalog registration; call before serving traffic.
  void RegisterTable(const table::TableDesc& desc);
  void RegisterDgfIndex(const std::string& table, core::DgfIndex* index);

  using QueryDone = WireService::QueryDone;

  /// Admits and asynchronously executes one SQL query. On admission returns
  /// OK and later invokes `done` exactly once on a worker thread; on
  /// rejection (queue full, or draining) returns Unavailable without ever
  /// calling `done`. `request_id` keys cancellation and must be unique among
  /// in-flight queries of this service. `trace_id` 0 assigns a fresh one.
  Status SubmitQuery(uint64_t request_id, std::string sql,
                     double deadline_seconds, uint64_t trace_id,
                     QueryDone done) override;

  /// Trips the cancel token of an in-flight query. False when no query with
  /// that id is in flight (already finished, or never admitted).
  bool CancelQuery(uint64_t request_id) override;

  /// Appends text rows to `table`'s DGF index (the paper's incremental batch
  /// load) through a double-buffered group-commit pipeline: concurrent
  /// Append calls to one table accumulate into an open group; one caller
  /// becomes the group's leader, stages its rows as a single batch table,
  /// and then — while the *next* group's leader is already staging — waits
  /// its turn to reorganize the batch into the index (one slice-file
  /// extension, one atomic KvStore::WriteBatch publish). Only the
  /// reorganize+publish step serializes on the index, so under load the
  /// pipeline overlaps group N's publish with group N+1's staging and group
  /// N+2's accumulation. Readers see whole groups or nothing (PR 3's epoch
  /// semantics), groups publish in leader order, and K concurrent appenders
  /// cost one publish per flush, not per call. Returns this call's row count
  /// once the group holding it has published.
  Result<uint64_t> Append(const std::string& table,
                          const std::vector<std::string>& rows) override;

  /// Counter snapshot for the STATS opcode: the registry's snapshot plus
  /// the legacy aliases (cache.hit_rate, latency.samples, latency.p*_ms)
  /// older dashboards and the tests key on.
  std::vector<std::pair<std::string, double>> StatsSnapshot() const override;

  /// Stops admitting queries (new submissions get Unavailable).
  void BeginDrain() override;
  /// Blocks until every admitted query has completed.
  void Drain() override;

  query::QueryExecutor* executor() { return executor_.get(); }
  /// The registry this service reports into (Options.metrics or the private
  /// one) — what an HTTP exporter should serve.
  obs::MetricsRegistry* metrics() const { return metrics_; }
  /// Ring buffer of recent query traces, for the /trace endpoint.
  obs::TraceLog* trace_log() { return &trace_log_; }

 private:
  /// One group-commit unit: the concatenated rows of every Append call that
  /// joined it, plus the shared flush outcome. Guarded by mu_.
  struct AppendGroup {
    std::vector<std::string> rows;
    bool done = false;
    Status status;
  };

  struct TableEntry {
    table::TableDesc desc;
    core::DgfIndex* dgf = nullptr;
    /// Batch ids claimed by leaders so far; names staging directories.
    int append_batches = 0;
    /// Group accepting new Append calls; null until the first joiner.
    /// Invariant: while !staging, a non-done group equals open_group.
    std::shared_ptr<AppendGroup> open_group;
    /// True while a leader is writing its group's staging table. Cleared
    /// before reorganize+publish, so the next group's staging overlaps it.
    bool staging = false;
    /// The batch id allowed to reorganize+publish next: staged batches enter
    /// the index strictly in leader order, whatever order staging finishes.
    /// `append_batches - publish_turn` is the pipeline depth; leaders are
    /// admitted only while it is < 2 (one batch publishing, one staging),
    /// which is the backpressure that coalesces concurrent calls into
    /// groups.
    int publish_turn = 0;
  };

  /// `queued` was started at admission: its elapsed time when the worker
  /// picks the query up is the admission-wait span.
  void RunQuery(uint64_t request_id, std::string sql, uint64_t trace_id,
                Stopwatch queued, std::shared_ptr<CancelToken> token,
                QueryDone done);
  Result<query::Query> Parse(const std::string& sql) const;
  /// Pipeline stage 1 of a group commit: writes `rows` as batch table
  /// `batch_id` (no index state touched, so it overlaps the previous
  /// group's publish). Runs outside mu_. Fills `*batch` for stage 2.
  Status StageAppendGroup(const TableEntry& entry, int batch_id,
                          const std::vector<std::string>& rows,
                          table::TableDesc* batch);
  /// Pipeline stage 2: reorganizes the staged batch into the index (one
  /// slice file) and publishes one WriteBatch. Serializes on the index
  /// mutation lock inside DgfBuilder::Append. Runs outside mu_.
  Status ReorganizeAppendBatch(const TableEntry& entry,
                               const table::TableDesc& batch);

  Options options_;
  /// Backing storage when Options.metrics is null.
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::unique_ptr<query::QueryExecutor> executor_;
  std::map<std::string, TableEntry> catalog_;
  ThreadPool pool_;
  obs::TraceLog trace_log_;

  mutable std::mutex mu_;
  std::condition_variable drained_;
  /// Wakes append waiters when a flush completes (their group published) or
  /// leadership of the open group becomes available.
  std::condition_variable append_cv_;
  bool draining_ = false;
  /// Admitted queries not yet completed (queued + running). Guarded by mu_
  /// (it gates admission); mirrored into the registry via a callback gauge.
  int in_flight_ = 0;
  std::map<uint64_t, std::shared_ptr<CancelToken>> tokens_;

  // Registry-backed counters, resolved once in the constructor; increments
  // are relaxed atomics, so none of them need mu_.
  obs::Counter* c_admitted_ = nullptr;
  obs::Counter* c_served_ = nullptr;
  obs::Counter* c_rejected_ = nullptr;
  obs::Counter* c_cancelled_ = nullptr;
  obs::Counter* c_deadline_exceeded_ = nullptr;
  obs::Counter* c_failed_ = nullptr;
  obs::Counter* c_appends_ = nullptr;
  obs::Counter* c_rows_appended_ = nullptr;
  /// Group-commit flushes (<= appends; the gap is the batching win).
  obs::Counter* c_append_flushes_ = nullptr;
  /// Cumulative wall seconds the append pipeline spent per stage. Staging
  /// overlaps the previous group's reorganize, so under load the two sums
  /// together exceeding the end-to-end append wall time is the direct
  /// evidence the double buffer overlaps.
  obs::Gauge* g_append_staging_s_ = nullptr;
  obs::Gauge* g_append_reorg_s_ = nullptr;
  obs::Counter* c_cache_hits_ = nullptr;
  obs::Counter* c_cache_misses_ = nullptr;
  obs::Counter* c_records_read_ = nullptr;
  /// Query wall-time histogram (seconds); replaces the old sliding window.
  obs::Histogram* latency_ = nullptr;
};

}  // namespace dgf::server

#endif  // DGF_SERVER_QUERY_SERVICE_H_
