#include "server/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

namespace dgf::server {

namespace {

/// connect() bounded by `timeout_seconds`: non-blocking connect, poll for
/// writability, then SO_ERROR for the real outcome. Restores blocking mode
/// on success.
Status ConnectWithTimeout(int fd, const sockaddr* addr, socklen_t addrlen,
                          double timeout_seconds) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return Status::IOError(std::string("fcntl: ") + std::strerror(errno));
  }
  if (::connect(fd, addr, addrlen) != 0) {
    if (errno != EINPROGRESS) {
      return Status::IOError(std::string("connect: ") + std::strerror(errno));
    }
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    const int timeout_ms =
        static_cast<int>(std::min(timeout_seconds * 1e3, 2.0e9)) + 1;
    int n;
    do {
      n = ::poll(&pfd, 1, timeout_ms);
    } while (n < 0 && errno == EINTR);
    if (n < 0) {
      return Status::IOError(std::string("poll: ") + std::strerror(errno));
    }
    if (n == 0) return Status::IOError("connect timed out");
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
      return Status::IOError(std::string("getsockopt: ") +
                             std::strerror(errno));
    }
    if (err != 0) {
      return Status::IOError(std::string("connect: ") + std::strerror(err));
    }
  }
  if (::fcntl(fd, F_SETFL, flags) != 0) {
    return Status::IOError(std::string("fcntl: ") + std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<ServerClient>> ServerClient::ConnectTcp(
    const std::string& host, int port, double connect_timeout_seconds) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  Status connected;
  if (connect_timeout_seconds > 0) {
    connected = ConnectWithTimeout(fd, reinterpret_cast<sockaddr*>(&addr),
                                   sizeof(addr), connect_timeout_seconds);
  } else if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr)) != 0) {
    connected = Status::IOError(std::string("connect: ") +
                                std::strerror(errno));
  }
  if (!connected.ok()) {
    ::close(fd);
    return Status::IOError("connect " + host + ":" + std::to_string(port) +
                           ": " + connected.message());
  }
  return std::unique_ptr<ServerClient>(new ServerClient(fd));
}

Result<std::unique_ptr<ServerClient>> ServerClient::ConnectUnix(
    const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("unix socket path too long: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError("connect " + path + ": " + std::strerror(err));
  }
  return std::unique_ptr<ServerClient>(new ServerClient(fd));
}

ServerClient::~ServerClient() {
  if (fd_ >= 0) ::close(fd_);
}

Result<uint64_t> ServerClient::Send(Request request) {
  request.request_id = next_request_id_++;
  DGF_RETURN_IF_ERROR(WriteFrame(fd_, EncodeRequest(request)));
  return request.request_id;
}

Result<Response> ServerClient::Await(uint64_t request_id) {
  auto it = buffered_.find(request_id);
  if (it != buffered_.end()) {
    Response response = std::move(it->second);
    buffered_.erase(it);
    return response;
  }
  std::string body;
  for (;;) {
    DGF_ASSIGN_OR_RETURN(bool more, ReadFrame(fd_, &body));
    if (!more) {
      return Status::IOError("connection closed awaiting response " +
                             std::to_string(request_id));
    }
    DGF_ASSIGN_OR_RETURN(Response response, DecodeResponse(body));
    if (response.request_id == request_id) return response;
    buffered_[response.request_id] = std::move(response);
  }
}

Result<std::optional<Response>> ServerClient::AwaitFor(
    uint64_t request_id, double timeout_seconds) {
  auto it = buffered_.find(request_id);
  if (it != buffered_.end()) {
    Response response = std::move(it->second);
    buffered_.erase(it);
    return std::optional<Response>(std::move(response));
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(
                                std::max(0.0, timeout_seconds)));
  std::string body;
  for (;;) {
    const double remaining =
        std::chrono::duration<double>(deadline -
                                      std::chrono::steady_clock::now())
            .count();
    DGF_ASSIGN_OR_RETURN(bool readable,
                         WaitReadable(fd_, std::max(0.0, remaining)));
    if (!readable) {
      if (remaining <= 0) return std::optional<Response>();
      continue;
    }
    // A full frame may still take multiple recvs; SetRecvTimeout (if the
    // caller armed one) bounds a peer stalling mid-frame.
    DGF_ASSIGN_OR_RETURN(bool more, ReadFrame(fd_, &body));
    if (!more) {
      return Status::IOError("connection closed awaiting response " +
                             std::to_string(request_id));
    }
    DGF_ASSIGN_OR_RETURN(Response response, DecodeResponse(body));
    if (response.request_id == request_id) {
      return std::optional<Response>(std::move(response));
    }
    buffered_[response.request_id] = std::move(response);
  }
}

Status ServerClient::SetRecvTimeout(double timeout_seconds) {
  return server::SetRecvTimeout(fd_, timeout_seconds);
}

Result<Response> ServerClient::Call(Request request) {
  DGF_ASSIGN_OR_RETURN(uint64_t id, Send(std::move(request)));
  return Await(id);
}

Result<Response> ServerClient::Query(const std::string& sql,
                                     double deadline_seconds,
                                     uint64_t trace_id) {
  Request request;
  request.opcode = Opcode::kQuery;
  request.query.sql = sql;
  request.query.deadline_seconds = deadline_seconds;
  request.query.trace_id = trace_id;
  return Call(std::move(request));
}

Result<uint64_t> ServerClient::StartQuery(const std::string& sql,
                                          double deadline_seconds,
                                          uint64_t trace_id) {
  Request request;
  request.opcode = Opcode::kQuery;
  request.query.sql = sql;
  request.query.deadline_seconds = deadline_seconds;
  request.query.trace_id = trace_id;
  return Send(std::move(request));
}

Result<uint64_t> ServerClient::StartCancel(uint64_t target_request_id) {
  Request request;
  request.opcode = Opcode::kCancel;
  request.cancel_target = target_request_id;
  return Send(std::move(request));
}

Result<Response> ServerClient::Append(const std::string& table,
                                      const std::vector<std::string>& rows) {
  Request request;
  request.opcode = Opcode::kAppend;
  request.append.table = table;
  request.append.rows = rows;
  return Call(std::move(request));
}

Result<Response> ServerClient::Stats() {
  Request request;
  request.opcode = Opcode::kStats;
  return Call(std::move(request));
}

Result<Response> ServerClient::Ping() {
  Request request;
  request.opcode = Opcode::kPing;
  return Call(std::move(request));
}

Result<Response> ServerClient::Shutdown() {
  Request request;
  request.opcode = Opcode::kShutdown;
  return Call(std::move(request));
}

}  // namespace dgf::server
