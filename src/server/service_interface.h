#ifndef DGF_SERVER_SERVICE_INTERFACE_H_
#define DGF_SERVER_SERVICE_INTERFACE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "query/executor.h"

namespace dgf::server {

/// What the wire front end (`Server`) needs from whatever answers requests.
/// Two implementations exist: `QueryService` executes queries locally against
/// its catalog, and `coord::Coordinator` scatters them across shard servers
/// and gathers the partial results. The server is oblivious to which one it
/// fronts — a coordinator speaks the exact same protocol as a shard, so
/// `dgf_cli` and the load harness work unchanged against a cluster.
class WireService {
 public:
  using QueryDone = std::function<void(Result<query::QueryResult>)>;

  virtual ~WireService() = default;

  /// Admits and asynchronously executes one SQL query. On admission returns
  /// OK and later invokes `done` exactly once on a worker thread; on
  /// rejection (queue full, or draining) returns Unavailable without ever
  /// calling `done`. `request_id` keys cancellation and must be unique among
  /// in-flight queries of this service. `trace_id` joins this execution to a
  /// distributed trace (a coordinator passes its own id down to shard
  /// sub-queries); 0 makes the service assign a fresh one, reported back in
  /// the result's QueryStats.
  virtual Status SubmitQuery(uint64_t request_id, std::string sql,
                             double deadline_seconds, uint64_t trace_id,
                             QueryDone done) = 0;

  /// Trips the cancel token of an in-flight query. False when no query with
  /// that id is in flight (already finished, or never admitted).
  virtual bool CancelQuery(uint64_t request_id) = 0;

  /// Appends text rows to `table`. Returns the row count once the rows are
  /// durably published (whatever that means for the implementation: one
  /// group-commit flush locally, one append per owning shard for a
  /// coordinator).
  virtual Result<uint64_t> Append(const std::string& table,
                                  const std::vector<std::string>& rows) = 0;

  /// Counter snapshot for the STATS opcode.
  virtual std::vector<std::pair<std::string, double>> StatsSnapshot()
      const = 0;

  /// Stops admitting queries (new submissions get Unavailable).
  virtual void BeginDrain() = 0;
  /// Blocks until every admitted query has completed.
  virtual void Drain() = 0;
};

}  // namespace dgf::server

#endif  // DGF_SERVER_SERVICE_INTERFACE_H_
