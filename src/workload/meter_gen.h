#ifndef DGF_WORKLOAD_METER_GEN_H_
#define DGF_WORKLOAD_METER_GEN_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/result.h"
#include "fs/mini_dfs.h"
#include "table/table.h"

namespace dgf::workload {

/// Configuration of the synthetic smart-meter dataset.
///
/// Models the paper's Zhejiang Grid table: userId (many distinct values),
/// regionId (few), a collection date (few distinct days), powerConsumed, and
/// `extra_metrics` further numeric columns (positive/reverse active total
/// electricity at different rates, etc.) to reach the paper's 17-field rows.
/// Records are generated in collection order — all records of one day are
/// contiguous — because "in real world dataset, the records that have same
/// time are stored together".
struct MeterConfig {
  int64_t num_users = 10000;
  int64_t num_regions = 11;
  int num_days = 30;
  /// Day number of the first collection day (2012-12-01).
  int64_t start_day = 15675;
  /// Records per user per day (the paper's grid collects up to 96).
  int readings_per_day = 1;
  /// Additional numeric metric columns beyond the four core fields.
  int extra_metrics = 13;
  /// Zipf skew of user activity; 0 = uniform.
  double user_skew = 0.0;
  uint64_t seed = 42;

  int64_t TotalRows() const {
    return num_users * num_days * readings_per_day;
  }
};

/// Schema of the meter table under `config`.
table::Schema MeterSchema(const MeterConfig& config);

/// Streams every row of the dataset, in collection order, into `sink`.
/// Deterministic for a fixed config.
Status ForEachMeterRow(const MeterConfig& config,
                       const std::function<Status(const table::Row&)>& sink);

/// Generates the meter table into `dir` on the DFS.
Result<table::TableDesc> GenerateMeterTable(
    const std::shared_ptr<fs::MiniDfs>& dfs, const std::string& dir,
    const MeterConfig& config,
    table::FileFormat format = table::FileFormat::kText,
    uint64_t max_file_bytes = 512ULL << 20);

/// Schema of the userInfo archive table (userId, userName, regionId,
/// address) the paper joins meter data against.
table::Schema UserInfoSchema();

/// Generates the userInfo archive table (one row per user).
Result<table::TableDesc> GenerateUserInfoTable(
    const std::shared_ptr<fs::MiniDfs>& dfs, const std::string& dir,
    const MeterConfig& config);

/// Region of a user (stable hash); exposed so tests and query generators can
/// reason about region selectivity.
int64_t RegionOfUser(const MeterConfig& config, int64_t user_id);

}  // namespace dgf::workload

#endif  // DGF_WORKLOAD_METER_GEN_H_
