#ifndef DGF_WORKLOAD_QUERY_GEN_H_
#define DGF_WORKLOAD_QUERY_GEN_H_

#include <cstdint>
#include <string>

#include "query/query.h"
#include "workload/meter_gen.h"

namespace dgf::workload {

/// Selectivity classes the paper evaluates (Figures 8-16).
enum class Selectivity { kPoint, kFivePercent, kTwelvePercent };

const char* SelectivityName(Selectivity sel);

/// Target fraction of the table selected by each class (point ~ one user-day
/// in one region).
double SelectivityFraction(Selectivity sel);

/// Shape of the paper's three query templates over the meter table.
enum class MeterQueryKind {
  /// Listing 4: SELECT sum(powerConsumed) WHERE <3-dim range>.
  kAggregation,
  /// Listing 5: SELECT time, sum(powerConsumed) ... GROUP BY time.
  kGroupBy,
  /// Listing 6: SELECT userName, powerConsumed FROM meterdata JOIN userInfo.
  kJoin,
  /// Listing 7: userId condition dropped (partial-specified query).
  kPartial,
};

/// Builds a meter-data query of the given kind and selectivity. The 3-dim
/// range predicate covers: all regions, a window of days, and the userId
/// range sized so the overall selected fraction matches the class.
/// `variant` perturbs the range placement deterministically.
query::Query MakeMeterQuery(const MeterConfig& config, MeterQueryKind kind,
                            Selectivity sel, uint64_t variant = 0);

}  // namespace dgf::workload

#endif  // DGF_WORKLOAD_QUERY_GEN_H_
