#include "workload/query_gen.h"

#include <algorithm>

#include "common/logging.h"
#include "common/random.h"

namespace dgf::workload {

using query::Bound;
using query::ColumnRange;
using query::Query;
using query::SelectItem;
using table::Value;

const char* SelectivityName(Selectivity sel) {
  switch (sel) {
    case Selectivity::kPoint:
      return "point";
    case Selectivity::kFivePercent:
      return "5%";
    case Selectivity::kTwelvePercent:
      return "12%";
  }
  return "?";
}

double SelectivityFraction(Selectivity sel) {
  switch (sel) {
    case Selectivity::kPoint:
      return 0.0;  // single user, single day
    case Selectivity::kFivePercent:
      return 0.05;
    case Selectivity::kTwelvePercent:
      return 0.12;
  }
  return 0.0;
}

Query MakeMeterQuery(const MeterConfig& config, MeterQueryKind kind,
                     Selectivity sel, uint64_t variant) {
  Random rng(config.seed ^ (0xA11CE + variant * 7919));
  Query q;
  q.table = "meterdata";

  // ---- Predicate ----
  // Point: one user, one region, one day. Ranged: all regions, half the
  // days, and a userId window sized to hit the target overall fraction.
  if (sel == Selectivity::kPoint) {
    const int64_t user = rng.UniformRange(0, config.num_users - 1);
    const int64_t day =
        config.start_day + rng.UniformRange(0, config.num_days - 1);
    if (kind != MeterQueryKind::kPartial) {
      q.where.And(ColumnRange::Equal("userId", Value::Int64(user)));
    }
    q.where.And(
        ColumnRange::Equal("regionId", Value::Int64(RegionOfUser(config, user))));
    q.where.And(ColumnRange::Equal("time", Value::Date(day)));
  } else {
    const double fraction = SelectivityFraction(sel);
    // Wider selectivity classes widen the time window too (as in the paper,
    // where the Compact baseline reads more data at 12% than at 5%).
    const int day_window = std::max(
        1, sel == Selectivity::kTwelvePercent ? config.num_days / 2
                                              : config.num_days / 4);
    const double day_fraction =
        static_cast<double>(day_window) / config.num_days;
    const double user_fraction = std::min(1.0, fraction / day_fraction);
    const auto user_span = std::max<int64_t>(
        1, static_cast<int64_t>(user_fraction * config.num_users));
    const int64_t user_lo =
        config.num_users - user_span > 0
            ? rng.UniformRange(0, config.num_users - user_span)
            : 0;
    const int64_t day_lo =
        config.start_day + rng.UniformRange(0, config.num_days - day_window);
    if (kind != MeterQueryKind::kPartial) {
      q.where.And(ColumnRange::Between("userId", Value::Int64(user_lo), true,
                                       Value::Int64(user_lo + user_span),
                                       false));
    }
    q.where.And(ColumnRange::Between("regionId", Value::Int64(1), true,
                                     Value::Int64(config.num_regions), true));
    q.where.And(ColumnRange::Between("time", Value::Date(day_lo), true,
                                     Value::Date(day_lo + day_window), false));
  }

  // ---- Shape ----
  auto sum_power = core::AggSpec::Parse("sum(powerConsumed)");
  DGF_CHECK(sum_power.ok());
  switch (kind) {
    case MeterQueryKind::kAggregation:
    case MeterQueryKind::kPartial:
      q.select.push_back(SelectItem::Aggregation(*sum_power));
      break;
    case MeterQueryKind::kGroupBy:
      q.select.push_back(SelectItem::Column("time"));
      q.select.push_back(SelectItem::Aggregation(*sum_power));
      q.group_by = "time";
      break;
    case MeterQueryKind::kJoin: {
      q.select.push_back(SelectItem::Column("userName"));
      q.select.push_back(SelectItem::Column("powerConsumed"));
      query::JoinClause join;
      join.right_table = "userinfo";
      join.left_column = "userId";
      join.right_column = "userId";
      q.join = std::move(join);
      break;
    }
  }
  return q;
}

}  // namespace dgf::workload
