#ifndef DGF_WORKLOAD_TPCH_GEN_H_
#define DGF_WORKLOAD_TPCH_GEN_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/result.h"
#include "fs/mini_dfs.h"
#include "query/query.h"
#include "table/table.h"

namespace dgf::workload {

/// Configuration of the synthetic TPC-H lineitem table.
///
/// Column domains follow the TPC-H specification (quantity 1..50, discount
/// 0.00..0.10, shipdate 1992..1998). Rows are emitted in random order — the
/// property of dbgen output that makes every dimension value appear in every
/// split, defeating the Compact Index (Table 6's "filters nothing" result).
struct LineitemConfig {
  int64_t num_rows = 100000;
  uint64_t seed = 7;
};

/// Full 16-column lineitem schema.
table::Schema LineitemSchema();

/// Streams each lineitem row into `sink`.
Status ForEachLineitemRow(const LineitemConfig& config,
                          const std::function<Status(const table::Row&)>& sink);

/// Generates the lineitem table into `dir`.
Result<table::TableDesc> GenerateLineitemTable(
    const std::shared_ptr<fs::MiniDfs>& dfs, const std::string& dir,
    const LineitemConfig& config,
    table::FileFormat format = table::FileFormat::kText,
    uint64_t max_file_bytes = 512ULL << 20);

/// TPC-H Q6 for a given year and parameters:
///   SELECT sum(l_extendedprice*l_discount) FROM lineitem
///   WHERE l_shipdate >= 'year-01-01' AND l_shipdate < 'year+1-01-01'
///     AND l_discount >= d-0.01 AND l_discount <= d+0.01
///     AND l_quantity < q;
query::Query MakeQ6(int year, double discount, int64_t quantity);

}  // namespace dgf::workload

#endif  // DGF_WORKLOAD_TPCH_GEN_H_
