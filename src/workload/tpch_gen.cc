#include "workload/tpch_gen.h"

#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"

namespace dgf::workload {

using table::DataType;
using table::Row;
using table::Schema;
using table::TableDesc;
using table::Value;

Schema LineitemSchema() {
  return Schema({{"l_orderkey", DataType::kInt64},
                 {"l_partkey", DataType::kInt64},
                 {"l_suppkey", DataType::kInt64},
                 {"l_linenumber", DataType::kInt64},
                 {"l_quantity", DataType::kDouble},
                 {"l_extendedprice", DataType::kDouble},
                 {"l_discount", DataType::kDouble},
                 {"l_tax", DataType::kDouble},
                 {"l_returnflag", DataType::kString},
                 {"l_linestatus", DataType::kString},
                 {"l_shipdate", DataType::kDate},
                 {"l_commitdate", DataType::kDate},
                 {"l_receiptdate", DataType::kDate},
                 {"l_shipinstruct", DataType::kString},
                 {"l_shipmode", DataType::kString},
                 {"l_comment", DataType::kString}});
}

Status ForEachLineitemRow(const LineitemConfig& config,
                          const std::function<Status(const Row&)>& sink) {
  if (config.num_rows <= 0) {
    return Status::InvalidArgument("num_rows must be positive");
  }
  Random rng(config.seed);
  static constexpr const char* kReturnFlags[] = {"R", "A", "N"};
  static constexpr const char* kLineStatus[] = {"O", "F"};
  static constexpr const char* kInstructs[] = {
      "DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"};
  static constexpr const char* kModes[] = {"REG AIR", "AIR",  "RAIL", "SHIP",
                                           "TRUCK",   "MAIL", "FOB"};
  const int64_t ship_lo = table::DaysFromCivil(1992, 1, 1);
  const int64_t ship_hi = table::DaysFromCivil(1998, 12, 1);

  Row row(16);
  for (int64_t i = 0; i < config.num_rows; ++i) {
    const int64_t quantity = rng.UniformRange(1, 50);
    const double part_price = 900.0 + static_cast<double>(rng.Uniform(100000)) / 100.0;
    const double discount = static_cast<double>(rng.UniformRange(0, 10)) / 100.0;
    const int64_t shipdate = rng.UniformRange(ship_lo, ship_hi);
    row[0] = Value::Int64(i / 4 + 1);                      // orderkey
    row[1] = Value::Int64(rng.UniformRange(1, 200000));    // partkey
    row[2] = Value::Int64(rng.UniformRange(1, 10000));     // suppkey
    row[3] = Value::Int64(i % 4 + 1);                      // linenumber
    row[4] = Value::Double(static_cast<double>(quantity));
    row[5] = Value::Double(static_cast<double>(quantity) * part_price);
    row[6] = Value::Double(discount);
    row[7] = Value::Double(static_cast<double>(rng.UniformRange(0, 8)) / 100.0);
    row[8] = Value::String(kReturnFlags[rng.Uniform(3)]);
    row[9] = Value::String(kLineStatus[rng.Uniform(2)]);
    row[10] = Value::Date(shipdate);
    row[11] = Value::Date(shipdate + rng.UniformRange(-30, 30));
    row[12] = Value::Date(shipdate + rng.UniformRange(1, 30));
    row[13] = Value::String(kInstructs[rng.Uniform(4)]);
    row[14] = Value::String(kModes[rng.Uniform(7)]);
    row[15] = Value::String(StringPrintf("synthetic comment %llu",
                                         static_cast<unsigned long long>(
                                             rng.Uniform(1000000))));
    DGF_RETURN_IF_ERROR(sink(row));
  }
  return Status::OK();
}

Result<TableDesc> GenerateLineitemTable(const std::shared_ptr<fs::MiniDfs>& dfs,
                                        const std::string& dir,
                                        const LineitemConfig& config,
                                        table::FileFormat format,
                                        uint64_t max_file_bytes) {
  TableDesc desc{"lineitem", LineitemSchema(), format, dir};
  table::TableWriter::Options options;
  options.max_file_bytes = max_file_bytes;
  DGF_ASSIGN_OR_RETURN(auto writer, table::TableWriter::Create(dfs, desc, options));
  DGF_RETURN_IF_ERROR(ForEachLineitemRow(
      config, [&](const Row& row) { return writer->Append(row); }));
  DGF_RETURN_IF_ERROR(writer->Close());
  return desc;
}

query::Query MakeQ6(int year, double discount, int64_t quantity) {
  query::Query q;
  q.table = "lineitem";
  auto spec = core::AggSpec::Parse("sum(l_extendedprice*l_discount)");
  DGF_CHECK(spec.ok());
  q.select.push_back(query::SelectItem::Aggregation(*spec));
  q.where.And(query::ColumnRange::Between(
      "l_shipdate", Value::Date(table::DaysFromCivil(year, 1, 1)), true,
      Value::Date(table::DaysFromCivil(year + 1, 1, 1)), false));
  q.where.And(query::ColumnRange::Between(
      "l_discount", Value::Double(discount - 0.01), true,
      Value::Double(discount + 0.01), true));
  query::ColumnRange quantity_range;
  quantity_range.column = "l_quantity";
  quantity_range.upper =
      query::Bound{Value::Double(static_cast<double>(quantity)), false};
  q.where.And(std::move(quantity_range));
  return q;
}

}  // namespace dgf::workload
