#include "workload/meter_gen.h"

#include <numeric>
#include <vector>

#include "common/random.h"
#include "common/string_util.h"

namespace dgf::workload {

using table::DataType;
using table::Row;
using table::Schema;
using table::TableDesc;
using table::Value;

Schema MeterSchema(const MeterConfig& config) {
  std::vector<table::Field> fields = {{"userId", DataType::kInt64},
                                      {"regionId", DataType::kInt64},
                                      {"time", DataType::kDate},
                                      {"powerConsumed", DataType::kDouble}};
  for (int i = 0; i < config.extra_metrics; ++i) {
    fields.push_back({StringPrintf("pate_rate%d", i + 1), DataType::kDouble});
  }
  return Schema(std::move(fields));
}

int64_t RegionOfUser(const MeterConfig& config, int64_t user_id) {
  // Stable multiplicative hash; regions are 1-based as in the paper's data.
  const uint64_t h = static_cast<uint64_t>(user_id) * 0x9E3779B97F4A7C15ULL;
  return 1 + static_cast<int64_t>(h % static_cast<uint64_t>(config.num_regions));
}

Status ForEachMeterRow(const MeterConfig& config,
                       const std::function<Status(const Row&)>& sink) {
  if (config.num_users <= 0 || config.num_days <= 0 ||
      config.readings_per_day <= 0 || config.num_regions <= 0) {
    return Status::InvalidArgument("meter config must be positive");
  }
  Random rng(config.seed);
  std::unique_ptr<ZipfGenerator> zipf;
  if (config.user_skew > 0) {
    zipf = std::make_unique<ZipfGenerator>(
        static_cast<uint64_t>(config.num_users), config.user_skew,
        config.seed ^ 0xABCD);
  }
  Row row;
  row.resize(4 + static_cast<size_t>(config.extra_metrics));
  for (int day = 0; day < config.num_days; ++day) {
    for (int reading = 0; reading < config.readings_per_day; ++reading) {
      // Per collection round the meters report in a shuffled but
      // deterministic order: walk users with a coprime stride.
      int64_t stride =
          1 + 2 * static_cast<int64_t>(
                      rng.Uniform(static_cast<uint64_t>(config.num_users)));
      while (std::gcd(stride, config.num_users) != 1) ++stride;
      int64_t user = static_cast<int64_t>(
          rng.Uniform(static_cast<uint64_t>(config.num_users)));
      for (int64_t i = 0; i < config.num_users; ++i) {
        user = (user + stride) % config.num_users;
        int64_t user_id = user;
        if (zipf != nullptr) {
          user_id = static_cast<int64_t>(zipf->Next());
        }
        row[0] = Value::Int64(user_id);
        row[1] = Value::Int64(RegionOfUser(config, user_id));
        row[2] = Value::Date(config.start_day + day);
        row[3] = Value::Double(rng.UniformDouble(0.0, 500.0));
        for (int m = 0; m < config.extra_metrics; ++m) {
          row[4 + static_cast<size_t>(m)] =
              Value::Double(rng.UniformDouble(0.0, 100.0));
        }
        DGF_RETURN_IF_ERROR(sink(row));
      }
    }
  }
  return Status::OK();
}

Result<TableDesc> GenerateMeterTable(const std::shared_ptr<fs::MiniDfs>& dfs,
                                     const std::string& dir,
                                     const MeterConfig& config,
                                     table::FileFormat format,
                                     uint64_t max_file_bytes) {
  TableDesc desc{"meterdata", MeterSchema(config), format, dir};
  table::TableWriter::Options options;
  options.max_file_bytes = max_file_bytes;
  DGF_ASSIGN_OR_RETURN(auto writer, table::TableWriter::Create(dfs, desc, options));
  DGF_RETURN_IF_ERROR(ForEachMeterRow(
      config, [&](const Row& row) { return writer->Append(row); }));
  DGF_RETURN_IF_ERROR(writer->Close());
  return desc;
}

Schema UserInfoSchema() {
  return Schema({{"userId", DataType::kInt64},
                 {"userName", DataType::kString},
                 {"regionId", DataType::kInt64},
                 {"address", DataType::kString}});
}

Result<TableDesc> GenerateUserInfoTable(const std::shared_ptr<fs::MiniDfs>& dfs,
                                        const std::string& dir,
                                        const MeterConfig& config) {
  TableDesc desc{"userinfo", UserInfoSchema(), table::FileFormat::kText, dir};
  DGF_ASSIGN_OR_RETURN(auto writer, table::TableWriter::Create(dfs, desc));
  Random rng(config.seed ^ 0x5EED);
  for (int64_t user = 0; user < config.num_users; ++user) {
    Row row = {Value::Int64(user),
               Value::String(StringPrintf("user_%06lld",
                                          static_cast<long long>(user))),
               Value::Int64(RegionOfUser(config, user)),
               Value::String(StringPrintf("No.%llu Meter Street, District %lld",
                                          static_cast<unsigned long long>(
                                              rng.Uniform(9999) + 1),
                                          static_cast<long long>(
                                              RegionOfUser(config, user))))};
    DGF_RETURN_IF_ERROR(writer->Append(row));
  }
  DGF_RETURN_IF_ERROR(writer->Close());
  return desc;
}

}  // namespace dgf::workload
