#ifndef DGF_FS_SPLIT_H_
#define DGF_FS_SPLIT_H_

#include <cstdint>
#include <string>
#include <tuple>

namespace dgf::fs {

/// A contiguous byte range of one DFS file, the unit of work handed to a map
/// task — the analogue of Hadoop's FileSplit.
struct FileSplit {
  std::string path;
  uint64_t offset = 0;
  uint64_t length = 0;

  uint64_t end() const { return offset + length; }

  friend bool operator==(const FileSplit& a, const FileSplit& b) {
    return std::tie(a.path, a.offset, a.length) ==
           std::tie(b.path, b.offset, b.length);
  }
  friend bool operator<(const FileSplit& a, const FileSplit& b) {
    return std::tie(a.path, a.offset, a.length) <
           std::tie(b.path, b.offset, b.length);
  }
};

}  // namespace dgf::fs

#endif  // DGF_FS_SPLIT_H_
