#ifndef DGF_FS_MINI_DFS_H_
#define DGF_FS_MINI_DFS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "fs/split.h"

namespace dgf::fs {

/// Metadata for one DFS file.
struct FileStatus {
  std::string path;
  uint64_t length = 0;
  uint64_t block_size = 0;
};

/// Append-only writer handle for a DFS file (HDFS files are write-once /
/// append-only; this class enforces that discipline).
class DfsWriter {
 public:
  virtual ~DfsWriter() = default;

  /// Appends `data` at the end of the file.
  virtual Status Append(std::string_view data) = 0;

  /// Current length of the file (== offset where the next Append lands).
  virtual uint64_t Offset() const = 0;

  /// Flushes and seals the file. Must be called before readers see the data
  /// length reflected in metadata.
  virtual Status Close() = 0;
};

/// Positional reader handle for a DFS file.
class DfsReader {
 public:
  virtual ~DfsReader() = default;

  /// Reads up to `length` bytes at `offset` into `*out` (replacing its
  /// contents). Short reads happen only at end of file.
  virtual Status Pread(uint64_t offset, uint64_t length, std::string* out) = 0;

  virtual uint64_t Length() const = 0;
};

/// One injected fault decision for a single low-level read.
struct ReadFault {
  enum class Kind {
    kNone,
    /// The read attempt fails; the reader retries it a bounded number of
    /// times (the DFS client's behaviour on a flaky DataNode) before
    /// failing over to the next replica — or, with no replica left,
    /// surfacing a structured IOError.
    kTransientError,
    /// The read attempt returns fewer bytes than asked (capped at
    /// `max_bytes`); the reader's loop must absorb it without truncating
    /// data. Never produces wrong data by construction — only exposes
    /// callers that mishandle partial reads.
    kShortRead,
  };
  Kind kind = Kind::kNone;
  uint64_t max_bytes = 0;
};

/// Fault source consulted once per low-level read attempt. Implementations
/// live in src/testing/ (seeded, replayable schedules); production runs have
/// none installed and pay only a null check.
///
/// Injectors are scoped *per replica store*: `SetReadFaultInjector(store, i)`
/// arms one store only, so a fault schedule can poison replica 0 without
/// also firing on the failover read from replica 1. The store-less overload
/// arms every store (the pre-replication behaviour, kept for the existing
/// fault sweeps and gate-based tests).
class ReadFaultInjector {
 public:
  virtual ~ReadFaultInjector() = default;

  /// Decides the fate of one read attempt of `length` bytes at `offset` of
  /// `path`.
  virtual ReadFault NextFault(const std::string& path, uint64_t offset,
                              uint64_t length) = 0;
};

/// A single-process stand-in for HDFS.
///
/// Files are stored in a local directory; MiniDfs layers on top of it the
/// HDFS concepts the paper's techniques depend on:
///   * fixed block size and `GetSplits()` enumeration (inputs of map tasks),
///   * append-only write semantics,
///   * NameNode-style metadata accounting (`MetadataMemoryBytes()`), used to
///     reproduce the paper's argument about multidimensional partitioning
///     overloading the NameNode (Section 2.2),
///   * byte counters for the write/read-throughput experiments (Figure 3),
///   * k-way replication (`Options::replication`): every file fans out to k
///     replica stores (`root_dir/r0` … `root_dir/r{k-1}`, each standing in
///     for one DataNode's disk) on the write path, per-replica chunk
///     checksums are sealed at Close, and reads fail over to the next
///     replica on read error, short read, or checksum mismatch. Stores can
///     be killed/revived (`KillStore`/`ReviveStore`) to model DataNode
///     death, and `ReReplicate()` repairs under-replicated files from a
///     surviving copy. With replication == 1 (the default) the on-disk
///     layout and read/write behaviour are exactly the pre-replication
///     single-copy ones.
///
/// Thread-safe: concurrent readers/writers of distinct files are
/// unsynchronized fast paths (data bytes move through per-handle file
/// descriptors, never under a lock); metadata operations take the lock of
/// the *stripe* owning the path — the namespace is hash-partitioned across
/// kNumStripes independent maps, so N writer threads creating, sealing, and
/// appending distinct files serialize only when their paths collide on a
/// stripe, not on one global mutex. Reads consult the fault injector through
/// a lock-free presence flag, so the production read path takes no lock at
/// all.
class MiniDfs {
 public:
  struct Options {
    /// Directory on the local filesystem that backs the DFS namespace.
    std::string root_dir;
    /// HDFS block size; also the default split size. Paper uses 64 MB; tests
    /// and benches shrink it so multi-split behaviour shows at laptop scale.
    uint64_t block_size = 64ULL << 20;
    /// Number of replica stores each file fans out to. 1 (the default)
    /// keeps the legacy single-copy layout rooted directly at `root_dir`;
    /// k >= 2 places one full copy in each of `root_dir/r0 .. r{k-1}` and
    /// enables per-replica chunk checksums + read failover.
    int replication = 1;
    /// Checksum granularity for replicated files: one CRC32 per
    /// `checksum_chunk_bytes` bytes (last chunk may be partial). Ignored
    /// when replication == 1.
    uint64_t checksum_chunk_bytes = 64 * 1024;
  };

  /// Creates (or reopens) a DFS rooted at `options.root_dir`.
  static Result<std::shared_ptr<MiniDfs>> Open(const Options& options);

  ~MiniDfs();

  MiniDfs(const MiniDfs&) = delete;
  MiniDfs& operator=(const MiniDfs&) = delete;

  /// Creates a new file; fails with AlreadyExists if present.
  Result<std::unique_ptr<DfsWriter>> Create(const std::string& path);

  /// Reopens an existing file for appending at its current end.
  Result<std::unique_ptr<DfsWriter>> Append(const std::string& path);

  /// Opens a file for positional reads. The reader is bounded by the file's
  /// published length at open time: bytes appended (and sealed) afterwards
  /// are never returned by this reader, so a handle opened while a query's
  /// snapshot is pinned behaves as an immutable view of the file.
  Result<std::unique_ptr<DfsReader>> OpenForRead(const std::string& path);

  /// Opens a file for positional reads bounded by `length_limit` (clamped to
  /// the published length if smaller). Snapshot readers use this to pin the
  /// exact byte range their index epoch references, even if the namespace
  /// already reflects a newer append.
  Result<std::unique_ptr<DfsReader>> OpenForRead(const std::string& path,
                                                 uint64_t length_limit);

  Result<FileStatus> Stat(const std::string& path) const;
  bool Exists(const std::string& path) const;
  Status Delete(const std::string& path);
  Status Rename(const std::string& from, const std::string& to);

  /// Lists files whose path starts with `prefix`, sorted by path.
  std::vector<FileStatus> ListFiles(const std::string& prefix) const;

  /// Enumerates the splits of `path`: consecutive ranges of `split_size`
  /// bytes (0 = use the block size). The analogue of
  /// FileInputFormat.getSplits for one file.
  Result<std::vector<FileSplit>> GetSplits(const std::string& path,
                                           uint64_t split_size = 0) const;

  /// Splits for every file under `prefix` (a "table directory").
  Result<std::vector<FileSplit>> GetSplitsForPrefix(
      const std::string& prefix, uint64_t split_size = 0) const;

  uint64_t block_size() const { return options_.block_size; }

  /// Estimated NameNode heap usage: 150 bytes per directory, file, and block,
  /// matching the rule of thumb the paper cites for HDFS metadata. Counts
  /// logical objects (the NameNode tracks one block object regardless of its
  /// replica count), so the estimate is replication-invariant.
  uint64_t MetadataMemoryBytes() const;
  uint64_t NumFiles() const;
  uint64_t NumDirectories() const;

  /// Total bytes appended / read since construction (Figure 3 throughput).
  /// `TotalBytesWritten` counts logical bytes (one Append counted once);
  /// `TotalReplicaBytesWritten` counts physical bytes across all replica
  /// fan-out writes (== logical × live replicas), the number that shows the
  /// write amplification of replication in the benches.
  uint64_t TotalBytesWritten() const { return bytes_written_.load(); }
  uint64_t TotalReplicaBytesWritten() const {
    return replica_bytes_written_.load();
  }
  uint64_t TotalBytesRead() const { return bytes_read_.load(); }
  /// Number of Pread calls served (slice-coalescing experiments: merged read
  /// ranges show up here as fewer, larger reads for the same bytes).
  uint64_t TotalPreadCalls() const { return pread_calls_.load(); }
  /// Times a read abandoned one replica and moved to the next (read error
  /// past the retry budget, short replica file, or checksum mismatch).
  uint64_t TotalReadFailovers() const { return read_failovers_.load(); }
  /// Chunk-checksum mismatches detected on the read path.
  uint64_t TotalChecksumFailures() const { return checksum_failures_.load(); }
  void ResetCounters();

  // ---- Replication control surface (no-ops / errors when replication==1).

  int replication() const { return options_.replication; }
  int num_stores() const { return options_.replication; }

  /// The preference order in which readers of `path` try replica stores:
  /// only stores holding a complete copy, rotated so the primary is
  /// `hash(path) % k` (spreading read load across stores the way HDFS
  /// spreads block primaries across DataNodes).
  std::vector<int> ReplicaOrder(const std::string& path) const;

  /// Local-filesystem path of `path`'s copy inside `store` (whether or not
  /// the copy currently exists). Tests use this to corrupt exactly one
  /// replica on disk.
  std::string StoreLocalPath(int store, const std::string& path) const;

  /// Marks `store` down: subsequent writes skip it (marking affected files
  /// under-replicated) and reads fail over past it. With `wipe_data` the
  /// store's directory is deleted too, modelling a lost disk rather than a
  /// dead process.
  Status KillStore(int store, bool wipe_data = false);
  /// Marks `store` up again. Its copies stay stale/missing until
  /// `ReReplicate()` repairs them (reads keep failing over meanwhile, based
  /// on the per-file replica-valid flags).
  Status ReviveStore(int store);
  bool StoreUp(int store) const;

  /// Repairs every under-replicated file whose missing store is up again by
  /// copying from a valid replica. Returns the number of file-replicas
  /// repaired. Not intended to run concurrently with writers of the files
  /// being repaired (a concurrently-appended file is skipped, not broken).
  Result<uint64_t> ReReplicate();

  /// Checks that every live, valid replica of `path` matches the sealed
  /// length and chunk checksums. Corruption/IOError on mismatch.
  Status VerifyReplicas(const std::string& path) const;

  /// Installs (or, with nullptr, removes) a read-fault injector on every
  /// replica store. Applies to readers opened after the call as well as
  /// already-open ones.
  void SetReadFaultInjector(std::shared_ptr<ReadFaultInjector> injector);
  /// Installs (or removes) a read-fault injector on one replica store only,
  /// leaving its siblings clean — the deterministic-failover testing hook.
  void SetReadFaultInjector(int store,
                            std::shared_ptr<ReadFaultInjector> injector);

 private:
  /// Lock stripes over the namespace. 16 is comfortably above the writer
  /// parallelism any build pipeline configures while keeping the footprint
  /// of full-namespace operations (ListFiles, NumFiles) trivial.
  static constexpr size_t kNumStripes = 16;

  /// Immutable per-file checksum snapshot, sealed at writer Close and shared
  /// with readers (readers verify against the snapshot taken at open, so a
  /// concurrent re-seal cannot rip the vector out from under them). One
  /// CRC32 per chunk; the last chunk covers `covered_length % chunk_bytes`
  /// bytes when that is non-zero.
  struct FileChecksums {
    uint64_t chunk_bytes = 0;
    uint64_t covered_length = 0;
    std::vector<uint32_t> chunks;
  };

  /// Authoritative metadata for one file.
  struct FileMeta {
    uint64_t length = 0;
    /// Null when replication == 1 (no checksums, legacy behaviour).
    std::shared_ptr<const FileChecksums> sums;
    /// replica_ok[store]: that store holds a complete, current copy.
    /// Sized `replication`.
    std::vector<uint8_t> replica_ok;
    /// Writers currently appending. An unsealed file is never re-replicated
    /// (HDFS likewise only replicates finalized blocks): repairing a copy
    /// the write pipeline no longer extends would leave a stale replica
    /// marked valid.
    int open_writers = 0;
  };

  /// One hash partition of the namespace: path -> metadata. The maps are
  /// the authoritative metadata; the local directories are the backing
  /// store. Each map stays sorted so prefix listings remain range scans.
  struct Stripe {
    mutable std::mutex mu;
    std::map<std::string, FileMeta> files;
  };

  explicit MiniDfs(Options options);

  Status Init();
  std::string StoreRoot(int store) const;
  static Status ValidatePath(const std::string& path);
  void TrackDirectories(const std::string& path);
  Stripe& StripeFor(const std::string& path) const;
  /// Copies `store`'s injector (nullptr when none installed). Lock-free when
  /// no injector has ever been installed — the production fast path.
  std::shared_ptr<ReadFaultInjector> CurrentInjector(int store) const;
  std::vector<uint8_t> FreshReplicaOk() const;
  /// Recomputes the chunk checksums of a local file (recovery path).
  Result<std::shared_ptr<const FileChecksums>> ComputeSums(
      const std::string& local, uint64_t length) const;

  friend class LocalDfsWriter;
  friend class LocalDfsReader;

  Options options_;
  mutable std::array<Stripe, kNumStripes> stripes_;
  mutable std::mutex dir_mu_;
  std::set<std::string> directories_;  // guarded by dir_mu_
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> replica_bytes_written_{0};
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> pread_calls_{0};
  std::atomic<uint64_t> read_failovers_{0};
  std::atomic<uint64_t> checksum_failures_{0};
  /// store_up_[store]: the store accepts writes and serves reads.
  std::unique_ptr<std::atomic<bool>[]> store_up_;
  /// store_gen_[store]: bumped on every KillStore. An open write pipeline
  /// records each target's generation and permanently drops a target whose
  /// generation moved — a revived store's copy is stale until ReReplicate()
  /// and must not silently rejoin the fan-out (the old descriptor may even
  /// point at a wiped, unlinked inode).
  std::unique_ptr<std::atomic<uint64_t>[]> store_gen_;
  /// Guarded by injector_mu_; the atomic flag lets readers skip the lock
  /// entirely while no injector is installed on any store.
  mutable std::mutex injector_mu_;
  std::atomic<bool> has_injector_{false};
  std::vector<std::shared_ptr<ReadFaultInjector>> fault_injectors_;
};

}  // namespace dgf::fs

#endif  // DGF_FS_MINI_DFS_H_
