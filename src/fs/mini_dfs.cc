#include "fs/mini_dfs.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>

#include "common/logging.h"
#include "common/string_util.h"

namespace dgf::fs {
namespace {

// NameNode heap estimate per metadata object (directory, file, block); the
// figure the paper cites from the Cloudera small-files article.
constexpr uint64_t kMetadataObjectBytes = 150;

std::string ErrnoMessage(const std::string& context) {
  return context + ": " + std::strerror(errno);
}

}  // namespace

/// Writer backed by a local file opened with O_APPEND.
class LocalDfsWriter : public DfsWriter {
 public:
  LocalDfsWriter(MiniDfs* dfs, std::string path, int fd, uint64_t offset)
      : dfs_(dfs), path_(std::move(path)), fd_(fd), offset_(offset) {}

  ~LocalDfsWriter() override {
    if (fd_ >= 0) Close();
  }

  Status Append(std::string_view data) override {
    if (fd_ < 0) return Status::IOError("writer closed: " + path_);
    size_t written = 0;
    while (written < data.size()) {
      const ssize_t n = ::write(fd_, data.data() + written, data.size() - written);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(ErrnoMessage("write " + path_));
      }
      written += static_cast<size_t>(n);
    }
    offset_ += data.size();
    dfs_->bytes_written_.fetch_add(data.size(), std::memory_order_relaxed);
    return Status::OK();
  }

  uint64_t Offset() const override { return offset_; }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    const int rc = ::close(fd_);
    fd_ = -1;
    {
      MiniDfs::Stripe& stripe = dfs_->StripeFor(path_);
      std::lock_guard<std::mutex> lock(stripe.mu);
      stripe.files[path_] = offset_;
    }
    if (rc != 0) return Status::IOError(ErrnoMessage("close " + path_));
    return Status::OK();
  }

 private:
  MiniDfs* dfs_;
  std::string path_;
  int fd_;
  uint64_t offset_;
};

/// Reader backed by pread on a local file descriptor.
class LocalDfsReader : public DfsReader {
 public:
  LocalDfsReader(MiniDfs* dfs, std::string path, int fd, uint64_t length)
      : dfs_(dfs), path_(std::move(path)), fd_(fd), length_(length) {}

  ~LocalDfsReader() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Pread(uint64_t offset, uint64_t length, std::string* out) override {
    out->clear();
    if (offset >= length_) return Status::OK();
    length = std::min(length, length_ - offset);
    out->resize(length);
    const std::shared_ptr<ReadFaultInjector> injector = dfs_->CurrentInjector();
    // Transient failures are retried like a DFS client failing over to
    // another replica; past the budget the error surfaces structured.
    int transient_failures = 0;
    constexpr int kMaxTransientRetries = 2;
    size_t done = 0;
    while (done < length) {
      size_t attempt = length - done;
      if (injector != nullptr) {
        const ReadFault fault =
            injector->NextFault(path_, offset + done, attempt);
        switch (fault.kind) {
          case ReadFault::Kind::kNone:
            break;
          case ReadFault::Kind::kTransientError:
            if (++transient_failures > kMaxTransientRetries) {
              return Status::IOError("injected transient read error: " +
                                     path_);
            }
            continue;  // retry the same attempt
          case ReadFault::Kind::kShortRead:
            attempt = std::min<size_t>(attempt,
                                       std::max<uint64_t>(1, fault.max_bytes));
            break;
        }
      }
      const ssize_t n = ::pread(fd_, out->data() + done, attempt,
                                static_cast<off_t>(offset + done));
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(ErrnoMessage("pread " + path_));
      }
      if (n == 0) break;  // end of file
      done += static_cast<size_t>(n);
    }
    out->resize(done);
    dfs_->bytes_read_.fetch_add(done, std::memory_order_relaxed);
    dfs_->pread_calls_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }

  uint64_t Length() const override { return length_; }

 private:
  MiniDfs* dfs_;
  std::string path_;
  int fd_;
  uint64_t length_;
};

MiniDfs::MiniDfs(Options options) : options_(std::move(options)) {}

MiniDfs::~MiniDfs() = default;

Result<std::shared_ptr<MiniDfs>> MiniDfs::Open(const Options& options) {
  if (options.root_dir.empty()) {
    return Status::InvalidArgument("MiniDfs root_dir is empty");
  }
  if (options.block_size == 0) {
    return Status::InvalidArgument("MiniDfs block_size must be > 0");
  }
  std::shared_ptr<MiniDfs> dfs(new MiniDfs(options));
  DGF_RETURN_IF_ERROR(dfs->Init());
  return dfs;
}

MiniDfs::Stripe& MiniDfs::StripeFor(const std::string& path) const {
  return stripes_[std::hash<std::string>{}(path) % kNumStripes];
}

std::shared_ptr<ReadFaultInjector> MiniDfs::CurrentInjector() const {
  if (!has_injector_.load(std::memory_order_acquire)) return nullptr;
  std::lock_guard<std::mutex> lock(injector_mu_);
  return fault_injector_;
}

Status MiniDfs::Init() {
  std::error_code ec;
  std::filesystem::create_directories(options_.root_dir, ec);
  if (ec) return Status::IOError("create_directories: " + ec.message());
  // Recover the namespace from any files already present under the root.
  for (const auto& entry : std::filesystem::recursive_directory_iterator(
           options_.root_dir, ec)) {
    if (ec) break;
    if (!entry.is_regular_file()) continue;
    std::string rel =
        std::filesystem::relative(entry.path(), options_.root_dir, ec).string();
    if (ec) return Status::IOError("relative: " + ec.message());
    const std::string dfs_path = "/" + rel;
    StripeFor(dfs_path).files[dfs_path] = entry.file_size();
    TrackDirectories(dfs_path);
  }
  return Status::OK();
}

std::string MiniDfs::LocalPath(const std::string& path) const {
  // DFS paths are absolute ("/a/b"); strip the leading slash.
  return options_.root_dir + "/" + path.substr(1);
}

Status MiniDfs::ValidatePath(const std::string& path) {
  if (path.size() < 2 || path.front() != '/') {
    return Status::InvalidArgument("DFS path must be absolute: '" + path + "'");
  }
  if (path.find("..") != std::string::npos) {
    return Status::InvalidArgument("DFS path must not contain '..': " + path);
  }
  if (path.back() == '/') {
    return Status::InvalidArgument("DFS file path must not end in '/': " + path);
  }
  return Status::OK();
}

void MiniDfs::TrackDirectories(const std::string& path) {
  // Register every ancestor directory ("/a/b/c.txt" -> "/a", "/a/b").
  std::lock_guard<std::mutex> lock(dir_mu_);
  for (size_t pos = path.find('/', 1); pos != std::string::npos;
       pos = path.find('/', pos + 1)) {
    directories_.insert(path.substr(0, pos));
  }
}

Result<std::unique_ptr<DfsWriter>> MiniDfs::Create(const std::string& path) {
  DGF_RETURN_IF_ERROR(ValidatePath(path));
  {
    Stripe& stripe = StripeFor(path);
    std::lock_guard<std::mutex> lock(stripe.mu);
    if (stripe.files.count(path) > 0) {
      return Status::AlreadyExists("file exists: " + path);
    }
    stripe.files[path] = 0;
  }
  TrackDirectories(path);
  const std::string local = LocalPath(path);
  std::error_code ec;
  std::filesystem::create_directories(
      std::filesystem::path(local).parent_path(), ec);
  if (ec) return Status::IOError("create parent dirs: " + ec.message());
  const int fd = ::open(local.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IOError(ErrnoMessage("open " + local));
  return std::unique_ptr<DfsWriter>(new LocalDfsWriter(this, path, fd, 0));
}

Result<std::unique_ptr<DfsWriter>> MiniDfs::Append(const std::string& path) {
  DGF_RETURN_IF_ERROR(ValidatePath(path));
  uint64_t length = 0;
  {
    Stripe& stripe = StripeFor(path);
    std::lock_guard<std::mutex> lock(stripe.mu);
    auto it = stripe.files.find(path);
    if (it == stripe.files.end()) {
      return Status::NotFound("no such file: " + path);
    }
    length = it->second;
  }
  const std::string local = LocalPath(path);
  const int fd = ::open(local.c_str(), O_WRONLY | O_APPEND);
  if (fd < 0) return Status::IOError(ErrnoMessage("open " + local));
  return std::unique_ptr<DfsWriter>(new LocalDfsWriter(this, path, fd, length));
}

Result<std::unique_ptr<DfsReader>> MiniDfs::OpenForRead(
    const std::string& path) {
  return OpenForRead(path, UINT64_MAX);
}

Result<std::unique_ptr<DfsReader>> MiniDfs::OpenForRead(
    const std::string& path, uint64_t length_limit) {
  DGF_RETURN_IF_ERROR(ValidatePath(path));
  uint64_t length = 0;
  {
    Stripe& stripe = StripeFor(path);
    std::lock_guard<std::mutex> lock(stripe.mu);
    auto it = stripe.files.find(path);
    if (it == stripe.files.end()) {
      return Status::NotFound("no such file: " + path);
    }
    length = std::min(it->second, length_limit);
  }
  const std::string local = LocalPath(path);
  const int fd = ::open(local.c_str(), O_RDONLY);
  if (fd < 0) return Status::IOError(ErrnoMessage("open " + local));
  return std::unique_ptr<DfsReader>(new LocalDfsReader(this, path, fd, length));
}

Result<FileStatus> MiniDfs::Stat(const std::string& path) const {
  Stripe& stripe = StripeFor(path);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.files.find(path);
  if (it == stripe.files.end()) {
    return Status::NotFound("no such file: " + path);
  }
  return FileStatus{path, it->second, options_.block_size};
}

bool MiniDfs::Exists(const std::string& path) const {
  Stripe& stripe = StripeFor(path);
  std::lock_guard<std::mutex> lock(stripe.mu);
  return stripe.files.count(path) > 0;
}

Status MiniDfs::Delete(const std::string& path) {
  {
    Stripe& stripe = StripeFor(path);
    std::lock_guard<std::mutex> lock(stripe.mu);
    if (stripe.files.erase(path) == 0) {
      return Status::NotFound("no such file: " + path);
    }
  }
  std::error_code ec;
  std::filesystem::remove(LocalPath(path), ec);
  if (ec) return Status::IOError("remove: " + ec.message());
  return Status::OK();
}

Status MiniDfs::Rename(const std::string& from, const std::string& to) {
  DGF_RETURN_IF_ERROR(ValidatePath(to));
  {
    // Both stripes must be held for the move to be atomic; lock them in
    // address order so concurrent renames cannot deadlock.
    Stripe& from_stripe = StripeFor(from);
    Stripe& to_stripe = StripeFor(to);
    std::unique_lock<std::mutex> first_lock;
    std::unique_lock<std::mutex> second_lock;
    if (&from_stripe == &to_stripe) {
      first_lock = std::unique_lock<std::mutex>(from_stripe.mu);
    } else if (&from_stripe < &to_stripe) {
      first_lock = std::unique_lock<std::mutex>(from_stripe.mu);
      second_lock = std::unique_lock<std::mutex>(to_stripe.mu);
    } else {
      first_lock = std::unique_lock<std::mutex>(to_stripe.mu);
      second_lock = std::unique_lock<std::mutex>(from_stripe.mu);
    }
    auto it = from_stripe.files.find(from);
    if (it == from_stripe.files.end()) {
      return Status::NotFound("no such file: " + from);
    }
    if (to_stripe.files.count(to) > 0) {
      return Status::AlreadyExists("exists: " + to);
    }
    to_stripe.files[to] = it->second;
    from_stripe.files.erase(it);
  }
  TrackDirectories(to);
  const std::string local_to = LocalPath(to);
  std::error_code ec;
  std::filesystem::create_directories(
      std::filesystem::path(local_to).parent_path(), ec);
  std::filesystem::rename(LocalPath(from), local_to, ec);
  if (ec) return Status::IOError("rename: " + ec.message());
  return Status::OK();
}

std::vector<FileStatus> MiniDfs::ListFiles(const std::string& prefix) const {
  // Matching paths are scattered across stripes by the hash; range-scan each
  // stripe's sorted map, then restore the global path order with one sort.
  std::vector<FileStatus> out;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    for (auto it = stripe.files.lower_bound(prefix); it != stripe.files.end();
         ++it) {
      if (!StartsWith(it->first, prefix)) break;
      out.push_back(FileStatus{it->first, it->second, options_.block_size});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FileStatus& a, const FileStatus& b) {
              return a.path < b.path;
            });
  return out;
}

Result<std::vector<FileSplit>> MiniDfs::GetSplits(const std::string& path,
                                                  uint64_t split_size) const {
  DGF_ASSIGN_OR_RETURN(FileStatus status, Stat(path));
  if (split_size == 0) split_size = options_.block_size;
  std::vector<FileSplit> splits;
  for (uint64_t offset = 0; offset < status.length; offset += split_size) {
    splits.push_back(
        FileSplit{path, offset, std::min(split_size, status.length - offset)});
  }
  return splits;
}

Result<std::vector<FileSplit>> MiniDfs::GetSplitsForPrefix(
    const std::string& prefix, uint64_t split_size) const {
  std::vector<FileSplit> all;
  for (const FileStatus& file : ListFiles(prefix)) {
    DGF_ASSIGN_OR_RETURN(std::vector<FileSplit> splits,
                         GetSplits(file.path, split_size));
    all.insert(all.end(), splits.begin(), splits.end());
  }
  return all;
}

uint64_t MiniDfs::MetadataMemoryBytes() const {
  uint64_t blocks = 0;
  uint64_t num_files = 0;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    num_files += stripe.files.size();
    for (const auto& [path, length] : stripe.files) {
      (void)path;
      blocks += (length + options_.block_size - 1) / options_.block_size;
    }
  }
  return kMetadataObjectBytes * (num_files + NumDirectories() + blocks);
}

uint64_t MiniDfs::NumFiles() const {
  uint64_t num_files = 0;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    num_files += stripe.files.size();
  }
  return num_files;
}

uint64_t MiniDfs::NumDirectories() const {
  std::lock_guard<std::mutex> lock(dir_mu_);
  return directories_.size();
}

void MiniDfs::ResetCounters() {
  bytes_written_.store(0);
  bytes_read_.store(0);
  pread_calls_.store(0);
}

void MiniDfs::SetReadFaultInjector(std::shared_ptr<ReadFaultInjector> injector) {
  std::lock_guard<std::mutex> lock(injector_mu_);
  fault_injector_ = std::move(injector);
  // Publish after the pointer is in place so a reader that observes the flag
  // as set always finds the injector under injector_mu_.
  has_injector_.store(fault_injector_ != nullptr, std::memory_order_release);
}

}  // namespace dgf::fs
