#include "fs/mini_dfs.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>

#include "common/encoding.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace dgf::fs {
namespace {

// NameNode heap estimate per metadata object (directory, file, block); the
// figure the paper cites from the Cloudera small-files article.
constexpr uint64_t kMetadataObjectBytes = 150;

std::string ErrnoMessage(const std::string& context) {
  return context + ": " + std::strerror(errno);
}

// Fully writes `data` to `fd` (append position).
bool WriteFully(int fd, std::string_view data) {
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

// Reads exactly `length` bytes at `offset` of the local file `path` into
// `*out`. Used by the writer (tail-chunk checksum resume) and recovery
// paths, which trust the local disk and bypass fault injection.
Status ReadLocalExactly(const std::string& local, uint64_t offset,
                        uint64_t length, std::string* out) {
  out->resize(length);
  const int fd = ::open(local.c_str(), O_RDONLY);
  if (fd < 0) return Status::IOError(ErrnoMessage("open " + local));
  size_t done = 0;
  while (done < length) {
    const ssize_t n = ::pread(fd, out->data() + done, length - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::IOError(ErrnoMessage("pread " + local));
    }
    if (n == 0) {
      ::close(fd);
      return Status::IOError("short local file: " + local);
    }
    done += static_cast<size_t>(n);
  }
  ::close(fd);
  return Status::OK();
}

}  // namespace

/// Writer fanning every append out to all live replica stores. With
/// replication == 1 this degenerates to the legacy single-fd writer (one
/// target, no checksums). A store that dies mid-write is dropped from the
/// fan-out and its copy marked invalid at Close; the write itself only
/// fails when *no* replica target survives.
class LocalDfsWriter : public DfsWriter {
 public:
  struct Target {
    int store;
    int fd;
    /// The store's kill generation when this pipeline opened; a moved
    /// generation means the store died (and possibly lost its disk) since,
    /// so the descriptor may point at a stale or unlinked inode.
    uint64_t gen;
  };

  LocalDfsWriter(MiniDfs* dfs, std::string path, std::vector<Target> targets,
                 uint64_t offset, bool checksummed,
                 std::vector<uint32_t> full_chunks, uint32_t tail_crc,
                 uint64_t tail_bytes)
      : dfs_(dfs),
        path_(std::move(path)),
        targets_(std::move(targets)),
        offset_(offset),
        checksummed_(checksummed),
        full_chunks_(std::move(full_chunks)),
        tail_crc_(tail_crc),
        tail_bytes_(tail_bytes) {}

  ~LocalDfsWriter() override {
    if (!closed_) Close();
  }

  Status Append(std::string_view data) override {
    if (closed_) return Status::IOError("writer closed: " + path_);
    DropDeadStores();
    if (targets_.empty()) {
      return Status::IOError("no live replica store for write: " + path_);
    }
    for (auto it = targets_.begin(); it != targets_.end();) {
      if (!WriteFully(it->fd, data)) {
        ::close(it->fd);
        it = targets_.erase(it);
        continue;
      }
      dfs_->replica_bytes_written_.fetch_add(data.size(),
                                             std::memory_order_relaxed);
      ++it;
    }
    if (targets_.empty()) {
      return Status::IOError(ErrnoMessage("write " + path_));
    }
    if (checksummed_) FeedChecksums(data);
    offset_ += data.size();
    dfs_->bytes_written_.fetch_add(data.size(), std::memory_order_relaxed);
    return Status::OK();
  }

  uint64_t Offset() const override { return offset_; }

  Status Close() override {
    if (closed_) return Status::OK();
    closed_ = true;
    DropDeadStores();
    Status close_error = Status::OK();
    std::vector<int> sealed_stores;
    for (const Target& target : targets_) {
      if (::close(target.fd) != 0) {
        if (close_error.ok()) {
          close_error = Status::IOError(ErrnoMessage("close " + path_));
        }
        continue;
      }
      sealed_stores.push_back(target.store);
    }
    targets_.clear();
    std::shared_ptr<const MiniDfs::FileChecksums> sums;
    if (checksummed_) {
      auto owned = std::make_shared<MiniDfs::FileChecksums>();
      owned->chunk_bytes = dfs_->options_.checksum_chunk_bytes;
      owned->covered_length = offset_;
      owned->chunks = full_chunks_;
      if (tail_bytes_ > 0) owned->chunks.push_back(tail_crc_);
      sums = std::move(owned);
    }
    {
      MiniDfs::Stripe& stripe = dfs_->StripeFor(path_);
      std::lock_guard<std::mutex> lock(stripe.mu);
      MiniDfs::FileMeta& meta = stripe.files[path_];
      meta.length = offset_;
      meta.sums = std::move(sums);
      meta.replica_ok.assign(dfs_->options_.replication, 0);
      for (int store : sealed_stores) meta.replica_ok[store] = 1;
      meta.open_writers = std::max(0, meta.open_writers - 1);
    }
    return close_error;
  }

 private:
  void DropDeadStores() {
    for (auto it = targets_.begin(); it != targets_.end();) {
      if (!dfs_->StoreUp(it->store) ||
          dfs_->store_gen_[it->store].load(std::memory_order_acquire) !=
              it->gen) {
        ::close(it->fd);
        it = targets_.erase(it);
      } else {
        ++it;
      }
    }
  }

  void FeedChecksums(std::string_view data) {
    const uint64_t chunk = dfs_->options_.checksum_chunk_bytes;
    while (!data.empty()) {
      const uint64_t room = chunk - tail_bytes_;
      const size_t take = static_cast<size_t>(
          std::min<uint64_t>(room, data.size()));
      tail_crc_ = Crc32(tail_crc_, data.substr(0, take));
      tail_bytes_ += take;
      if (tail_bytes_ == chunk) {
        full_chunks_.push_back(tail_crc_);
        tail_crc_ = 0;
        tail_bytes_ = 0;
      }
      data.remove_prefix(take);
    }
  }

  MiniDfs* dfs_;
  std::string path_;
  std::vector<Target> targets_;
  uint64_t offset_;
  bool closed_ = false;
  // Running chunk checksums (replication > 1 only): CRCs of the sealed full
  // chunks so far plus the partial tail chunk in flight.
  bool checksummed_;
  std::vector<uint32_t> full_chunks_;
  uint32_t tail_crc_;
  uint64_t tail_bytes_;
};

/// Reader with replica failover. `candidates` is the replica preference
/// order snapshot from open time; a replica is abandoned (and the next one
/// tried) on a read error past the transient-retry budget, a replica file
/// shorter than the sealed span, or a chunk-checksum mismatch. With
/// replication == 1 (no checksums) the behaviour is the legacy single-copy
/// read loop, including legal short reads at end of file.
class LocalDfsReader : public DfsReader {
 public:
  LocalDfsReader(MiniDfs* dfs, std::string path, uint64_t length,
                 std::shared_ptr<const MiniDfs::FileChecksums> sums,
                 std::vector<int> candidates, size_t open_index, int open_fd)
      : dfs_(dfs),
        path_(std::move(path)),
        length_(length),
        sums_(std::move(sums)),
        candidates_(std::move(candidates)),
        preferred_(open_index),
        fds_(candidates_.size(), -1) {
    if (open_index < fds_.size()) fds_[open_index] = open_fd;
  }

  ~LocalDfsReader() override {
    for (int fd : fds_) {
      if (fd >= 0) ::close(fd);
    }
  }

  Status Pread(uint64_t offset, uint64_t length, std::string* out) override {
    out->clear();
    if (offset >= length_) return Status::OK();
    length = std::min(length, length_ - offset);
    if (sums_ == nullptr) return LegacyPread(offset, length, out);

    // Checksummed path: read the chunk-aligned span covering the request
    // from one replica, verify every covered chunk, then slice out the
    // requested range. covered_length always reaches length_ (both are
    // published together at seal), so the whole request is verifiable.
    const uint64_t chunk = sums_->chunk_bytes;
    const uint64_t lo = (offset / chunk) * chunk;
    const uint64_t hi = std::min(
        ((offset + length + chunk - 1) / chunk) * chunk, sums_->covered_length);
    std::string buf;
    Status last = Status::IOError("no valid replica: " + path_);
    const size_t start = preferred_.load(std::memory_order_relaxed);
    for (size_t i = 0; i < candidates_.size(); ++i) {
      const size_t index = (start + i) % candidates_.size();
      Status attempt = TryReadReplica(index, lo, hi - lo, &buf);
      if (attempt.ok()) {
        preferred_.store(index, std::memory_order_relaxed);
        out->assign(buf, static_cast<size_t>(offset - lo),
                    static_cast<size_t>(length));
        dfs_->bytes_read_.fetch_add(length, std::memory_order_relaxed);
        dfs_->pread_calls_.fetch_add(1, std::memory_order_relaxed);
        return Status::OK();
      }
      last = attempt;
      if (i + 1 < candidates_.size()) {
        dfs_->read_failovers_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    return last;
  }

  uint64_t Length() const override { return length_; }

 private:
  static constexpr int kMaxTransientRetries = 2;

  // The pre-replication read loop, byte-for-byte: transient faults retried
  // against the same (only) copy, short reads absorbed, EOF legal.
  Status LegacyPread(uint64_t offset, uint64_t length, std::string* out) {
    out->resize(length);
    const int store = candidates_.empty() ? 0 : candidates_[0];
    const int fd = fds_.empty() ? -1 : fds_[0];
    const std::shared_ptr<ReadFaultInjector> injector =
        dfs_->CurrentInjector(store);
    int transient_failures = 0;
    size_t done = 0;
    while (done < length) {
      size_t attempt = length - done;
      if (injector != nullptr) {
        const ReadFault fault =
            injector->NextFault(path_, offset + done, attempt);
        switch (fault.kind) {
          case ReadFault::Kind::kNone:
            break;
          case ReadFault::Kind::kTransientError:
            if (++transient_failures > kMaxTransientRetries) {
              return Status::IOError("injected transient read error: " +
                                     path_);
            }
            continue;  // retry the same attempt
          case ReadFault::Kind::kShortRead:
            attempt = std::min<size_t>(attempt,
                                       std::max<uint64_t>(1, fault.max_bytes));
            break;
        }
      }
      const ssize_t n = ::pread(fd, out->data() + done, attempt,
                                static_cast<off_t>(offset + done));
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(ErrnoMessage("pread " + path_));
      }
      if (n == 0) break;  // end of file
      done += static_cast<size_t>(n);
    }
    out->resize(done);
    dfs_->bytes_read_.fetch_add(done, std::memory_order_relaxed);
    dfs_->pread_calls_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }

  // Reads [lo, lo+span) of the file from candidate `index` and verifies the
  // chunk checksums. Any failure condemns this replica for the attempt.
  Status TryReadReplica(size_t index, uint64_t lo, uint64_t span,
                        std::string* buf) {
    const int store = candidates_[index];
    if (!dfs_->StoreUp(store)) {
      return Status::IOError("replica store down: " + path_);
    }
    int fd = fds_[index];
    if (fd < 0) {
      std::lock_guard<std::mutex> lock(fd_mu_);
      fd = fds_[index];
      if (fd < 0) {
        const std::string local = dfs_->StoreLocalPath(store, path_);
        fd = ::open(local.c_str(), O_RDONLY);
        if (fd < 0) return Status::IOError(ErrnoMessage("open " + local));
        fds_[index] = fd;
      }
    }
    buf->resize(span);
    const std::shared_ptr<ReadFaultInjector> injector =
        dfs_->CurrentInjector(store);
    int transient_failures = 0;
    size_t done = 0;
    while (done < span) {
      size_t attempt = span - done;
      if (injector != nullptr) {
        const ReadFault fault = injector->NextFault(path_, lo + done, attempt);
        switch (fault.kind) {
          case ReadFault::Kind::kNone:
            break;
          case ReadFault::Kind::kTransientError:
            if (++transient_failures > kMaxTransientRetries) {
              return Status::IOError("injected transient read error: " +
                                     path_);
            }
            continue;
          case ReadFault::Kind::kShortRead:
            attempt = std::min<size_t>(attempt,
                                       std::max<uint64_t>(1, fault.max_bytes));
            break;
        }
      }
      const ssize_t n = ::pread(fd, buf->data() + done, attempt,
                                static_cast<off_t>(lo + done));
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(ErrnoMessage("pread " + path_));
      }
      if (n == 0) {
        // The replica's copy is shorter than the sealed span: stale or
        // truncated — never silently return less than the sealed bytes.
        return Status::IOError("replica shorter than sealed length: " + path_);
      }
      done += static_cast<size_t>(n);
    }
    const uint64_t chunk = sums_->chunk_bytes;
    for (uint64_t pos = lo; pos < lo + span; pos += chunk) {
      const size_t chunk_index = static_cast<size_t>(pos / chunk);
      const uint64_t extent =
          std::min(chunk, sums_->covered_length - pos);
      const uint32_t crc = Crc32(
          0, std::string_view(buf->data() + (pos - lo),
                              static_cast<size_t>(extent)));
      if (chunk_index >= sums_->chunks.size() ||
          crc != sums_->chunks[chunk_index]) {
        dfs_->checksum_failures_.fetch_add(1, std::memory_order_relaxed);
        return Status::Corruption("replica checksum mismatch: " + path_);
      }
    }
    return Status::OK();
  }

  MiniDfs* dfs_;
  std::string path_;
  uint64_t length_;
  std::shared_ptr<const MiniDfs::FileChecksums> sums_;
  std::vector<int> candidates_;
  /// Index into candidates_ of the replica that served the last successful
  /// read; failover moves it so a dead primary is not re-probed per call.
  std::atomic<size_t> preferred_;
  std::mutex fd_mu_;  // guards lazy opens into fds_
  std::vector<int> fds_;
};

MiniDfs::MiniDfs(Options options) : options_(std::move(options)) {
  const int k = options_.replication;
  store_up_ = std::make_unique<std::atomic<bool>[]>(k);
  store_gen_ = std::make_unique<std::atomic<uint64_t>[]>(k);
  for (int i = 0; i < k; ++i) {
    store_up_[i].store(true);
    store_gen_[i].store(0);
  }
  fault_injectors_.resize(k);
}

MiniDfs::~MiniDfs() = default;

Result<std::shared_ptr<MiniDfs>> MiniDfs::Open(const Options& options) {
  if (options.root_dir.empty()) {
    return Status::InvalidArgument("MiniDfs root_dir is empty");
  }
  if (options.block_size == 0) {
    return Status::InvalidArgument("MiniDfs block_size must be > 0");
  }
  if (options.replication < 1 || options.replication > 16) {
    return Status::InvalidArgument("MiniDfs replication must be in [1, 16]");
  }
  if (options.replication > 1 && options.checksum_chunk_bytes == 0) {
    return Status::InvalidArgument("MiniDfs checksum_chunk_bytes must be > 0");
  }
  std::shared_ptr<MiniDfs> dfs(new MiniDfs(options));
  DGF_RETURN_IF_ERROR(dfs->Init());
  return dfs;
}

MiniDfs::Stripe& MiniDfs::StripeFor(const std::string& path) const {
  return stripes_[std::hash<std::string>{}(path) % kNumStripes];
}

std::shared_ptr<ReadFaultInjector> MiniDfs::CurrentInjector(int store) const {
  if (!has_injector_.load(std::memory_order_acquire)) return nullptr;
  std::lock_guard<std::mutex> lock(injector_mu_);
  if (store < 0 || store >= static_cast<int>(fault_injectors_.size())) {
    return nullptr;
  }
  return fault_injectors_[store];
}

std::vector<uint8_t> MiniDfs::FreshReplicaOk() const {
  return std::vector<uint8_t>(options_.replication, 0);
}

Result<std::shared_ptr<const MiniDfs::FileChecksums>> MiniDfs::ComputeSums(
    const std::string& local, uint64_t length) const {
  auto sums = std::make_shared<FileChecksums>();
  sums->chunk_bytes = options_.checksum_chunk_bytes;
  sums->covered_length = length;
  std::string buf;
  for (uint64_t pos = 0; pos < length; pos += sums->chunk_bytes) {
    const uint64_t extent = std::min(sums->chunk_bytes, length - pos);
    DGF_RETURN_IF_ERROR(ReadLocalExactly(local, pos, extent, &buf));
    sums->chunks.push_back(Crc32(0, buf));
  }
  return std::shared_ptr<const FileChecksums>(std::move(sums));
}

Status MiniDfs::Init() {
  const int k = options_.replication;
  std::error_code ec;
  for (int store = 0; store < k; ++store) {
    std::filesystem::create_directories(StoreRoot(store), ec);
    if (ec) return Status::IOError("create_directories: " + ec.message());
  }
  // Recover the namespace from any files already present under the stores.
  // A path's canonical length is the longest surviving copy (the replica
  // that saw the most acknowledged appends); shorter/missing copies are
  // marked invalid and left for ReReplicate().
  std::map<std::string, std::vector<int64_t>> found;  // path -> len per store
  for (int store = 0; store < k; ++store) {
    const std::string root = StoreRoot(store);
    for (const auto& entry :
         std::filesystem::recursive_directory_iterator(root, ec)) {
      if (ec) break;
      if (!entry.is_regular_file()) continue;
      std::string rel =
          std::filesystem::relative(entry.path(), root, ec).string();
      if (ec) return Status::IOError("relative: " + ec.message());
      const std::string dfs_path = "/" + rel;
      auto [it, inserted] =
          found.try_emplace(dfs_path, std::vector<int64_t>(k, -1));
      it->second[store] = static_cast<int64_t>(entry.file_size());
    }
  }
  for (const auto& [dfs_path, lengths] : found) {
    FileMeta meta;
    meta.replica_ok = FreshReplicaOk();
    int64_t canonical = 0;
    for (int store = 0; store < k; ++store) {
      canonical = std::max(canonical, lengths[store]);
    }
    meta.length = static_cast<uint64_t>(canonical);
    int source = -1;
    for (int store = 0; store < k; ++store) {
      if (lengths[store] == canonical) {
        meta.replica_ok[store] = 1;
        if (source < 0) source = store;
      }
    }
    if (k > 1 && meta.length > 0 && source >= 0) {
      DGF_ASSIGN_OR_RETURN(
          meta.sums,
          ComputeSums(StoreLocalPath(source, dfs_path), meta.length));
    }
    StripeFor(dfs_path).files[dfs_path] = std::move(meta);
    TrackDirectories(dfs_path);
  }
  return Status::OK();
}

std::string MiniDfs::StoreRoot(int store) const {
  if (options_.replication == 1) return options_.root_dir;
  return options_.root_dir + "/r" + std::to_string(store);
}

std::string MiniDfs::StoreLocalPath(int store,
                                    const std::string& path) const {
  // DFS paths are absolute ("/a/b"); strip the leading slash.
  return StoreRoot(store) + "/" + path.substr(1);
}

std::vector<int> MiniDfs::ReplicaOrder(const std::string& path) const {
  const int k = options_.replication;
  std::vector<uint8_t> ok;
  {
    Stripe& stripe = StripeFor(path);
    std::lock_guard<std::mutex> lock(stripe.mu);
    auto it = stripe.files.find(path);
    if (it != stripe.files.end()) ok = it->second.replica_ok;
  }
  const size_t start = std::hash<std::string>{}(path) % k;
  std::vector<int> order;
  for (int i = 0; i < k; ++i) {
    const int store = static_cast<int>((start + i) % k);
    // Unknown file (or pre-replication metadata): every store is a
    // candidate; otherwise only stores holding a complete copy.
    if (ok.empty() || (store < static_cast<int>(ok.size()) && ok[store])) {
      order.push_back(store);
    }
  }
  return order;
}

Status MiniDfs::ValidatePath(const std::string& path) {
  if (path.size() < 2 || path.front() != '/') {
    return Status::InvalidArgument("DFS path must be absolute: '" + path + "'");
  }
  if (path.find("..") != std::string::npos) {
    return Status::InvalidArgument("DFS path must not contain '..': " + path);
  }
  if (path.back() == '/') {
    return Status::InvalidArgument("DFS file path must not end in '/': " + path);
  }
  return Status::OK();
}

void MiniDfs::TrackDirectories(const std::string& path) {
  // Register every ancestor directory ("/a/b/c.txt" -> "/a", "/a/b").
  std::lock_guard<std::mutex> lock(dir_mu_);
  for (size_t pos = path.find('/', 1); pos != std::string::npos;
       pos = path.find('/', pos + 1)) {
    directories_.insert(path.substr(0, pos));
  }
}

Result<std::unique_ptr<DfsWriter>> MiniDfs::Create(const std::string& path) {
  DGF_RETURN_IF_ERROR(ValidatePath(path));
  {
    Stripe& stripe = StripeFor(path);
    std::lock_guard<std::mutex> lock(stripe.mu);
    if (stripe.files.count(path) > 0) {
      return Status::AlreadyExists("file exists: " + path);
    }
    FileMeta& meta = stripe.files[path];
    meta.length = 0;
    meta.replica_ok = FreshReplicaOk();
  }
  TrackDirectories(path);
  std::vector<LocalDfsWriter::Target> targets;
  Status open_error = Status::OK();
  for (int store = 0; store < options_.replication; ++store) {
    if (!StoreUp(store)) continue;
    const std::string local = StoreLocalPath(store, path);
    std::error_code ec;
    std::filesystem::create_directories(
        std::filesystem::path(local).parent_path(), ec);
    if (ec) {
      open_error = Status::IOError("create parent dirs: " + ec.message());
      continue;
    }
    const int fd = ::open(local.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
      open_error = Status::IOError(ErrnoMessage("open " + local));
      continue;
    }
    targets.push_back(LocalDfsWriter::Target{
        store, fd, store_gen_[store].load(std::memory_order_acquire)});
  }
  if (targets.empty()) {
    if (open_error.ok()) {
      open_error = Status::IOError("no live replica store: " + path);
    }
    return open_error;
  }
  {
    // A just-created (still empty) file is readable from the stores that
    // opened it; Close re-publishes the flags for the stores that survived
    // the whole write.
    Stripe& stripe = StripeFor(path);
    std::lock_guard<std::mutex> lock(stripe.mu);
    auto it = stripe.files.find(path);
    if (it != stripe.files.end()) {
      for (const auto& target : targets) it->second.replica_ok[target.store] = 1;
      ++it->second.open_writers;
    }
  }
  return std::unique_ptr<DfsWriter>(
      new LocalDfsWriter(this, path, std::move(targets), 0,
                         /*checksummed=*/options_.replication > 1, {}, 0, 0));
}

Result<std::unique_ptr<DfsWriter>> MiniDfs::Append(const std::string& path) {
  DGF_RETURN_IF_ERROR(ValidatePath(path));
  uint64_t length = 0;
  std::shared_ptr<const FileChecksums> sums;
  std::vector<uint8_t> replica_ok;
  {
    Stripe& stripe = StripeFor(path);
    std::lock_guard<std::mutex> lock(stripe.mu);
    auto it = stripe.files.find(path);
    if (it == stripe.files.end()) {
      return Status::NotFound("no such file: " + path);
    }
    length = it->second.length;
    sums = it->second.sums;
    replica_ok = it->second.replica_ok;
  }
  std::vector<LocalDfsWriter::Target> targets;
  Status open_error = Status::OK();
  for (int store = 0; store < options_.replication; ++store) {
    // Only stores holding a complete copy can extend it; stale replicas
    // stay invalid until ReReplicate().
    const bool ok = replica_ok.empty() ||
                    (store < static_cast<int>(replica_ok.size()) &&
                     replica_ok[store]);
    if (!ok || !StoreUp(store)) continue;
    const std::string local = StoreLocalPath(store, path);
    const int fd = ::open(local.c_str(), O_WRONLY | O_APPEND);
    if (fd < 0) {
      open_error = Status::IOError(ErrnoMessage("open " + local));
      continue;
    }
    targets.push_back(LocalDfsWriter::Target{
        store, fd, store_gen_[store].load(std::memory_order_acquire)});
  }
  if (targets.empty()) {
    if (open_error.ok()) {
      open_error = Status::IOError("no live replica store: " + path);
    }
    return open_error;
  }
  // Resume the running chunk checksums at `length`: full chunks carry over
  // from the sealed sums; the partial tail chunk is re-checksummed from the
  // first target's local copy.
  const bool checksummed = options_.replication > 1;
  std::vector<uint32_t> full_chunks;
  uint32_t tail_crc = 0;
  uint64_t tail_bytes = 0;
  if (checksummed && length > 0) {
    const uint64_t chunk = options_.checksum_chunk_bytes;
    const uint64_t full = length / chunk;
    if (sums != nullptr && sums->chunk_bytes == chunk &&
        sums->covered_length == length &&
        sums->chunks.size() >= full) {
      full_chunks.assign(sums->chunks.begin(), sums->chunks.begin() + full);
    } else {
      // Metadata predates checksums (or chunk size changed): recompute the
      // full chunks from the local copy we are about to extend.
      const std::string local = StoreLocalPath(targets[0].store, path);
      std::string buf;
      for (uint64_t pos = 0; pos + chunk <= length; pos += chunk) {
        Status read = ReadLocalExactly(local, pos, chunk, &buf);
        if (!read.ok()) {
          for (const auto& target : targets) ::close(target.fd);
          return read;
        }
        full_chunks.push_back(Crc32(0, buf));
      }
    }
    tail_bytes = length % chunk;
    if (tail_bytes > 0) {
      const std::string local = StoreLocalPath(targets[0].store, path);
      std::string buf;
      Status read = ReadLocalExactly(local, full * chunk, tail_bytes, &buf);
      if (!read.ok()) {
        for (const auto& target : targets) ::close(target.fd);
        return read;
      }
      tail_crc = Crc32(0, buf);
    }
  }
  {
    Stripe& stripe = StripeFor(path);
    std::lock_guard<std::mutex> lock(stripe.mu);
    auto it = stripe.files.find(path);
    if (it != stripe.files.end()) ++it->second.open_writers;
  }
  return std::unique_ptr<DfsWriter>(new LocalDfsWriter(
      this, path, std::move(targets), length, checksummed,
      std::move(full_chunks), tail_crc, tail_bytes));
}

Result<std::unique_ptr<DfsReader>> MiniDfs::OpenForRead(
    const std::string& path) {
  return OpenForRead(path, UINT64_MAX);
}

Result<std::unique_ptr<DfsReader>> MiniDfs::OpenForRead(
    const std::string& path, uint64_t length_limit) {
  DGF_RETURN_IF_ERROR(ValidatePath(path));
  uint64_t length = 0;
  std::shared_ptr<const FileChecksums> sums;
  std::vector<uint8_t> replica_ok;
  {
    Stripe& stripe = StripeFor(path);
    std::lock_guard<std::mutex> lock(stripe.mu);
    auto it = stripe.files.find(path);
    if (it == stripe.files.end()) {
      return Status::NotFound("no such file: " + path);
    }
    length = std::min(it->second.length, length_limit);
    sums = it->second.sums;
    replica_ok = it->second.replica_ok;
  }
  const int k = options_.replication;
  const size_t start = std::hash<std::string>{}(path) % k;
  std::vector<int> candidates;
  for (int i = 0; i < k; ++i) {
    const int store = static_cast<int>((start + i) % k);
    const bool ok = replica_ok.empty() ||
                    (store < static_cast<int>(replica_ok.size()) &&
                     replica_ok[store]);
    if (ok) candidates.push_back(store);
  }
  if (candidates.empty()) {
    return Status::IOError("no valid replica: " + path);
  }
  // Eagerly open the first openable candidate (the legacy contract: a
  // successfully-opened reader has a live descriptor). Later failover opens
  // are lazy.
  Status open_error = Status::OK();
  for (size_t index = 0; index < candidates.size(); ++index) {
    const std::string local = StoreLocalPath(candidates[index], path);
    const int fd = ::open(local.c_str(), O_RDONLY);
    if (fd < 0) {
      open_error = Status::IOError(ErrnoMessage("open " + local));
      continue;
    }
    return std::unique_ptr<DfsReader>(new LocalDfsReader(
        this, path, length, std::move(sums), std::move(candidates), index,
        fd));
  }
  return open_error;
}

Result<FileStatus> MiniDfs::Stat(const std::string& path) const {
  Stripe& stripe = StripeFor(path);
  std::lock_guard<std::mutex> lock(stripe.mu);
  auto it = stripe.files.find(path);
  if (it == stripe.files.end()) {
    return Status::NotFound("no such file: " + path);
  }
  return FileStatus{path, it->second.length, options_.block_size};
}

bool MiniDfs::Exists(const std::string& path) const {
  Stripe& stripe = StripeFor(path);
  std::lock_guard<std::mutex> lock(stripe.mu);
  return stripe.files.count(path) > 0;
}

Status MiniDfs::Delete(const std::string& path) {
  {
    Stripe& stripe = StripeFor(path);
    std::lock_guard<std::mutex> lock(stripe.mu);
    if (stripe.files.erase(path) == 0) {
      return Status::NotFound("no such file: " + path);
    }
  }
  Status result = Status::OK();
  for (int store = 0; store < options_.replication; ++store) {
    std::error_code ec;
    std::filesystem::remove(StoreLocalPath(store, path), ec);
    if (ec && result.ok()) {
      result = Status::IOError("remove: " + ec.message());
    }
  }
  return result;
}

Status MiniDfs::Rename(const std::string& from, const std::string& to) {
  DGF_RETURN_IF_ERROR(ValidatePath(to));
  {
    // Both stripes must be held for the move to be atomic; lock them in
    // address order so concurrent renames cannot deadlock.
    Stripe& from_stripe = StripeFor(from);
    Stripe& to_stripe = StripeFor(to);
    std::unique_lock<std::mutex> first_lock;
    std::unique_lock<std::mutex> second_lock;
    if (&from_stripe == &to_stripe) {
      first_lock = std::unique_lock<std::mutex>(from_stripe.mu);
    } else if (&from_stripe < &to_stripe) {
      first_lock = std::unique_lock<std::mutex>(from_stripe.mu);
      second_lock = std::unique_lock<std::mutex>(to_stripe.mu);
    } else {
      first_lock = std::unique_lock<std::mutex>(to_stripe.mu);
      second_lock = std::unique_lock<std::mutex>(from_stripe.mu);
    }
    auto it = from_stripe.files.find(from);
    if (it == from_stripe.files.end()) {
      return Status::NotFound("no such file: " + from);
    }
    if (to_stripe.files.count(to) > 0) {
      return Status::AlreadyExists("exists: " + to);
    }
    to_stripe.files[to] = std::move(it->second);
    from_stripe.files.erase(it);
  }
  TrackDirectories(to);
  // Move every replica's copy; a store without the source copy (invalid
  // replica / killed store) is skipped, and the move fails only when no
  // copy moved at all.
  int moved = 0;
  Status move_error = Status::OK();
  for (int store = 0; store < options_.replication; ++store) {
    const std::string local_from = StoreLocalPath(store, from);
    std::error_code exists_ec;
    if (!std::filesystem::exists(local_from, exists_ec)) continue;
    const std::string local_to = StoreLocalPath(store, to);
    std::error_code ec;
    std::filesystem::create_directories(
        std::filesystem::path(local_to).parent_path(), ec);
    std::filesystem::rename(local_from, local_to, ec);
    if (ec) {
      if (move_error.ok()) {
        move_error = Status::IOError("rename: " + ec.message());
      }
      continue;
    }
    ++moved;
  }
  if (moved == 0 && !move_error.ok()) return move_error;
  if (moved == 0) return Status::IOError("rename: no replica moved: " + from);
  return Status::OK();
}

std::vector<FileStatus> MiniDfs::ListFiles(const std::string& prefix) const {
  // Matching paths are scattered across stripes by the hash; range-scan each
  // stripe's sorted map, then restore the global path order with one sort.
  std::vector<FileStatus> out;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    for (auto it = stripe.files.lower_bound(prefix); it != stripe.files.end();
         ++it) {
      if (!StartsWith(it->first, prefix)) break;
      out.push_back(
          FileStatus{it->first, it->second.length, options_.block_size});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FileStatus& a, const FileStatus& b) {
              return a.path < b.path;
            });
  return out;
}

Result<std::vector<FileSplit>> MiniDfs::GetSplits(const std::string& path,
                                                  uint64_t split_size) const {
  DGF_ASSIGN_OR_RETURN(FileStatus status, Stat(path));
  if (split_size == 0) split_size = options_.block_size;
  std::vector<FileSplit> splits;
  for (uint64_t offset = 0; offset < status.length; offset += split_size) {
    splits.push_back(
        FileSplit{path, offset, std::min(split_size, status.length - offset)});
  }
  return splits;
}

Result<std::vector<FileSplit>> MiniDfs::GetSplitsForPrefix(
    const std::string& prefix, uint64_t split_size) const {
  std::vector<FileSplit> all;
  for (const FileStatus& file : ListFiles(prefix)) {
    DGF_ASSIGN_OR_RETURN(std::vector<FileSplit> splits,
                         GetSplits(file.path, split_size));
    all.insert(all.end(), splits.begin(), splits.end());
  }
  return all;
}

uint64_t MiniDfs::MetadataMemoryBytes() const {
  uint64_t blocks = 0;
  uint64_t num_files = 0;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    num_files += stripe.files.size();
    for (const auto& [path, meta] : stripe.files) {
      (void)path;
      blocks += (meta.length + options_.block_size - 1) / options_.block_size;
    }
  }
  return kMetadataObjectBytes * (num_files + NumDirectories() + blocks);
}

uint64_t MiniDfs::NumFiles() const {
  uint64_t num_files = 0;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    num_files += stripe.files.size();
  }
  return num_files;
}

uint64_t MiniDfs::NumDirectories() const {
  std::lock_guard<std::mutex> lock(dir_mu_);
  return directories_.size();
}

void MiniDfs::ResetCounters() {
  bytes_written_.store(0);
  replica_bytes_written_.store(0);
  bytes_read_.store(0);
  pread_calls_.store(0);
  read_failovers_.store(0);
  checksum_failures_.store(0);
}

bool MiniDfs::StoreUp(int store) const {
  if (store < 0 || store >= options_.replication) return false;
  return store_up_[store].load(std::memory_order_acquire);
}

Status MiniDfs::KillStore(int store, bool wipe_data) {
  if (store < 0 || store >= options_.replication) {
    return Status::InvalidArgument("no such replica store: " +
                                   std::to_string(store));
  }
  store_up_[store].store(false, std::memory_order_release);
  // Break every open write pipeline through this store: even if the store
  // revives, its copies are stale until ReReplicate() and the old
  // descriptors must not keep extending them (after a wipe they point at
  // unlinked inodes).
  store_gen_[store].fetch_add(1, std::memory_order_acq_rel);
  if (wipe_data) {
    std::error_code ec;
    std::filesystem::remove_all(StoreRoot(store), ec);
    if (ec) return Status::IOError("remove_all: " + ec.message());
    // A wiped store holds no copy of anything: invalidate its replicas so a
    // revive without re-replication cannot serve from the empty directory.
    for (Stripe& stripe : stripes_) {
      std::lock_guard<std::mutex> lock(stripe.mu);
      for (auto& [path, meta] : stripe.files) {
        (void)path;
        if (store < static_cast<int>(meta.replica_ok.size())) {
          meta.replica_ok[store] = 0;
        }
      }
    }
  }
  return Status::OK();
}

Status MiniDfs::ReviveStore(int store) {
  if (store < 0 || store >= options_.replication) {
    return Status::InvalidArgument("no such replica store: " +
                                   std::to_string(store));
  }
  std::error_code ec;
  std::filesystem::create_directories(StoreRoot(store), ec);
  if (ec) return Status::IOError("create_directories: " + ec.message());
  store_up_[store].store(true, std::memory_order_release);
  return Status::OK();
}

Result<uint64_t> MiniDfs::ReReplicate() {
  if (options_.replication <= 1) return static_cast<uint64_t>(0);
  struct Job {
    std::string path;
    uint64_t length;
    std::shared_ptr<const FileChecksums> sums;
    int source;
    std::vector<int> missing;
  };
  std::vector<Job> jobs;
  for (Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    for (const auto& [path, meta] : stripe.files) {
      // Never repair a file that is still being appended: the pipeline
      // extends only its own targets, so a copied replica would go stale
      // the moment the writer's next append lands. Close seals the file
      // and a later pass repairs it.
      if (meta.open_writers > 0) continue;
      Job job{path, meta.length, meta.sums, -1, {}};
      for (int store = 0; store < options_.replication; ++store) {
        const bool ok = store < static_cast<int>(meta.replica_ok.size()) &&
                        meta.replica_ok[store];
        if (ok && StoreUp(store) && job.source < 0) job.source = store;
        if (!ok && StoreUp(store)) job.missing.push_back(store);
      }
      if (job.source >= 0 && !job.missing.empty()) {
        jobs.push_back(std::move(job));
      }
    }
  }
  uint64_t repaired = 0;
  for (const Job& job : jobs) {
    const std::string source_local = StoreLocalPath(job.source, job.path);
    std::string contents;
    Status read = ReadLocalExactly(source_local, 0, job.length, &contents);
    if (!read.ok()) return read;
    for (int store : job.missing) {
      const std::string local = StoreLocalPath(store, job.path);
      std::error_code ec;
      std::filesystem::create_directories(
          std::filesystem::path(local).parent_path(), ec);
      if (ec) return Status::IOError("create parent dirs: " + ec.message());
      const int fd = ::open(local.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (fd < 0) return Status::IOError(ErrnoMessage("open " + local));
      const bool written = WriteFully(fd, contents);
      const int close_rc = ::close(fd);
      if (!written || close_rc != 0) {
        return Status::IOError("re-replicate copy failed: " + job.path);
      }
      // Publish only if the file was not appended/replaced while copying —
      // a changed length means our copy is already stale, so leave the
      // replica invalid for a later pass.
      Stripe& stripe = StripeFor(job.path);
      std::lock_guard<std::mutex> lock(stripe.mu);
      auto it = stripe.files.find(job.path);
      if (it != stripe.files.end() && it->second.length == job.length &&
          it->second.open_writers == 0 &&
          store < static_cast<int>(it->second.replica_ok.size())) {
        it->second.replica_ok[store] = 1;
        ++repaired;
      }
    }
  }
  return repaired;
}

Status MiniDfs::VerifyReplicas(const std::string& path) const {
  uint64_t length = 0;
  std::shared_ptr<const FileChecksums> sums;
  std::vector<uint8_t> replica_ok;
  {
    Stripe& stripe = StripeFor(path);
    std::lock_guard<std::mutex> lock(stripe.mu);
    auto it = stripe.files.find(path);
    if (it == stripe.files.end()) {
      return Status::NotFound("no such file: " + path);
    }
    length = it->second.length;
    sums = it->second.sums;
    replica_ok = it->second.replica_ok;
  }
  if (options_.replication == 1 || sums == nullptr) return Status::OK();
  for (int store = 0; store < options_.replication; ++store) {
    const bool ok = store < static_cast<int>(replica_ok.size()) &&
                    replica_ok[store];
    if (!ok || !StoreUp(store)) continue;
    const std::string local = StoreLocalPath(store, path);
    std::string buf;
    for (uint64_t pos = 0; pos < length; pos += sums->chunk_bytes) {
      const uint64_t extent = std::min(sums->chunk_bytes, length - pos);
      DGF_RETURN_IF_ERROR(ReadLocalExactly(local, pos, extent, &buf));
      const size_t chunk_index = static_cast<size_t>(pos / sums->chunk_bytes);
      if (chunk_index >= sums->chunks.size() ||
          Crc32(0, buf) != sums->chunks[chunk_index]) {
        return Status::Corruption("replica checksum mismatch: " + path +
                                  " store r" + std::to_string(store));
      }
    }
  }
  return Status::OK();
}

void MiniDfs::SetReadFaultInjector(std::shared_ptr<ReadFaultInjector> injector) {
  std::lock_guard<std::mutex> lock(injector_mu_);
  bool any = false;
  for (auto& slot : fault_injectors_) {
    slot = injector;
    any = any || slot != nullptr;
  }
  // Publish after the pointers are in place so a reader that observes the
  // flag as set always finds the injector under injector_mu_.
  has_injector_.store(any, std::memory_order_release);
}

void MiniDfs::SetReadFaultInjector(int store,
                                   std::shared_ptr<ReadFaultInjector> injector) {
  std::lock_guard<std::mutex> lock(injector_mu_);
  if (store < 0 || store >= static_cast<int>(fault_injectors_.size())) return;
  fault_injectors_[store] = std::move(injector);
  bool any = false;
  for (const auto& slot : fault_injectors_) any = any || slot != nullptr;
  has_injector_.store(any, std::memory_order_release);
}

}  // namespace dgf::fs
