# Empty compiler generated dependencies file for example_workflow_scheduler.
# This may be replaced when dependencies are built.
