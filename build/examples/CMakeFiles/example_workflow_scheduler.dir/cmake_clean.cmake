file(REMOVE_RECURSE
  "CMakeFiles/example_workflow_scheduler.dir/workflow_scheduler.cpp.o"
  "CMakeFiles/example_workflow_scheduler.dir/workflow_scheduler.cpp.o.d"
  "example_workflow_scheduler"
  "example_workflow_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_workflow_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
