file(REMOVE_RECURSE
  "CMakeFiles/example_tpch_q6.dir/tpch_q6.cpp.o"
  "CMakeFiles/example_tpch_q6.dir/tpch_q6.cpp.o.d"
  "example_tpch_q6"
  "example_tpch_q6.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_tpch_q6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
