# Empty compiler generated dependencies file for example_tpch_q6.
# This may be replaced when dependencies are built.
