file(REMOVE_RECURSE
  "CMakeFiles/example_policy_advisor_demo.dir/policy_advisor_demo.cpp.o"
  "CMakeFiles/example_policy_advisor_demo.dir/policy_advisor_demo.cpp.o.d"
  "example_policy_advisor_demo"
  "example_policy_advisor_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_policy_advisor_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
