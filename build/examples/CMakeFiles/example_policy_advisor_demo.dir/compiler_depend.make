# Empty compiler generated dependencies file for example_policy_advisor_demo.
# This may be replaced when dependencies are built.
