file(REMOVE_RECURSE
  "CMakeFiles/example_smart_grid_analytics.dir/smart_grid_analytics.cpp.o"
  "CMakeFiles/example_smart_grid_analytics.dir/smart_grid_analytics.cpp.o.d"
  "example_smart_grid_analytics"
  "example_smart_grid_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_smart_grid_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
