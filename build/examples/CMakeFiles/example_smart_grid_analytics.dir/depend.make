# Empty dependencies file for example_smart_grid_analytics.
# This may be replaced when dependencies are built.
