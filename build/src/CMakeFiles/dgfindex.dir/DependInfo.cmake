
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/encoding.cc" "src/CMakeFiles/dgfindex.dir/common/encoding.cc.o" "gcc" "src/CMakeFiles/dgfindex.dir/common/encoding.cc.o.d"
  "/root/repo/src/common/hyperloglog.cc" "src/CMakeFiles/dgfindex.dir/common/hyperloglog.cc.o" "gcc" "src/CMakeFiles/dgfindex.dir/common/hyperloglog.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/dgfindex.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/dgfindex.dir/common/logging.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/dgfindex.dir/common/random.cc.o" "gcc" "src/CMakeFiles/dgfindex.dir/common/random.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/dgfindex.dir/common/status.cc.o" "gcc" "src/CMakeFiles/dgfindex.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/dgfindex.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/dgfindex.dir/common/string_util.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/CMakeFiles/dgfindex.dir/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/dgfindex.dir/common/thread_pool.cc.o.d"
  "/root/repo/src/dgf/aggregators.cc" "src/CMakeFiles/dgfindex.dir/dgf/aggregators.cc.o" "gcc" "src/CMakeFiles/dgfindex.dir/dgf/aggregators.cc.o.d"
  "/root/repo/src/dgf/dgf_builder.cc" "src/CMakeFiles/dgfindex.dir/dgf/dgf_builder.cc.o" "gcc" "src/CMakeFiles/dgfindex.dir/dgf/dgf_builder.cc.o.d"
  "/root/repo/src/dgf/dgf_index.cc" "src/CMakeFiles/dgfindex.dir/dgf/dgf_index.cc.o" "gcc" "src/CMakeFiles/dgfindex.dir/dgf/dgf_index.cc.o.d"
  "/root/repo/src/dgf/dgf_input_format.cc" "src/CMakeFiles/dgfindex.dir/dgf/dgf_input_format.cc.o" "gcc" "src/CMakeFiles/dgfindex.dir/dgf/dgf_input_format.cc.o.d"
  "/root/repo/src/dgf/gfu.cc" "src/CMakeFiles/dgfindex.dir/dgf/gfu.cc.o" "gcc" "src/CMakeFiles/dgfindex.dir/dgf/gfu.cc.o.d"
  "/root/repo/src/dgf/partitioned_dgf.cc" "src/CMakeFiles/dgfindex.dir/dgf/partitioned_dgf.cc.o" "gcc" "src/CMakeFiles/dgfindex.dir/dgf/partitioned_dgf.cc.o.d"
  "/root/repo/src/dgf/policy_advisor.cc" "src/CMakeFiles/dgfindex.dir/dgf/policy_advisor.cc.o" "gcc" "src/CMakeFiles/dgfindex.dir/dgf/policy_advisor.cc.o.d"
  "/root/repo/src/dgf/slice_optimizer.cc" "src/CMakeFiles/dgfindex.dir/dgf/slice_optimizer.cc.o" "gcc" "src/CMakeFiles/dgfindex.dir/dgf/slice_optimizer.cc.o.d"
  "/root/repo/src/dgf/splitting_policy.cc" "src/CMakeFiles/dgfindex.dir/dgf/splitting_policy.cc.o" "gcc" "src/CMakeFiles/dgfindex.dir/dgf/splitting_policy.cc.o.d"
  "/root/repo/src/exec/cluster.cc" "src/CMakeFiles/dgfindex.dir/exec/cluster.cc.o" "gcc" "src/CMakeFiles/dgfindex.dir/exec/cluster.cc.o.d"
  "/root/repo/src/exec/mapreduce.cc" "src/CMakeFiles/dgfindex.dir/exec/mapreduce.cc.o" "gcc" "src/CMakeFiles/dgfindex.dir/exec/mapreduce.cc.o.d"
  "/root/repo/src/fs/mini_dfs.cc" "src/CMakeFiles/dgfindex.dir/fs/mini_dfs.cc.o" "gcc" "src/CMakeFiles/dgfindex.dir/fs/mini_dfs.cc.o.d"
  "/root/repo/src/hadoopdb/btree.cc" "src/CMakeFiles/dgfindex.dir/hadoopdb/btree.cc.o" "gcc" "src/CMakeFiles/dgfindex.dir/hadoopdb/btree.cc.o.d"
  "/root/repo/src/hadoopdb/hadoopdb.cc" "src/CMakeFiles/dgfindex.dir/hadoopdb/hadoopdb.cc.o" "gcc" "src/CMakeFiles/dgfindex.dir/hadoopdb/hadoopdb.cc.o.d"
  "/root/repo/src/hadoopdb/local_db.cc" "src/CMakeFiles/dgfindex.dir/hadoopdb/local_db.cc.o" "gcc" "src/CMakeFiles/dgfindex.dir/hadoopdb/local_db.cc.o.d"
  "/root/repo/src/index/bitmap_index.cc" "src/CMakeFiles/dgfindex.dir/index/bitmap_index.cc.o" "gcc" "src/CMakeFiles/dgfindex.dir/index/bitmap_index.cc.o.d"
  "/root/repo/src/index/compact_index.cc" "src/CMakeFiles/dgfindex.dir/index/compact_index.cc.o" "gcc" "src/CMakeFiles/dgfindex.dir/index/compact_index.cc.o.d"
  "/root/repo/src/kv/lsm_kv.cc" "src/CMakeFiles/dgfindex.dir/kv/lsm_kv.cc.o" "gcc" "src/CMakeFiles/dgfindex.dir/kv/lsm_kv.cc.o.d"
  "/root/repo/src/kv/mem_kv.cc" "src/CMakeFiles/dgfindex.dir/kv/mem_kv.cc.o" "gcc" "src/CMakeFiles/dgfindex.dir/kv/mem_kv.cc.o.d"
  "/root/repo/src/kv/sstable.cc" "src/CMakeFiles/dgfindex.dir/kv/sstable.cc.o" "gcc" "src/CMakeFiles/dgfindex.dir/kv/sstable.cc.o.d"
  "/root/repo/src/query/executor.cc" "src/CMakeFiles/dgfindex.dir/query/executor.cc.o" "gcc" "src/CMakeFiles/dgfindex.dir/query/executor.cc.o.d"
  "/root/repo/src/query/parser.cc" "src/CMakeFiles/dgfindex.dir/query/parser.cc.o" "gcc" "src/CMakeFiles/dgfindex.dir/query/parser.cc.o.d"
  "/root/repo/src/query/predicate.cc" "src/CMakeFiles/dgfindex.dir/query/predicate.cc.o" "gcc" "src/CMakeFiles/dgfindex.dir/query/predicate.cc.o.d"
  "/root/repo/src/query/query.cc" "src/CMakeFiles/dgfindex.dir/query/query.cc.o" "gcc" "src/CMakeFiles/dgfindex.dir/query/query.cc.o.d"
  "/root/repo/src/table/partition.cc" "src/CMakeFiles/dgfindex.dir/table/partition.cc.o" "gcc" "src/CMakeFiles/dgfindex.dir/table/partition.cc.o.d"
  "/root/repo/src/table/rc_format.cc" "src/CMakeFiles/dgfindex.dir/table/rc_format.cc.o" "gcc" "src/CMakeFiles/dgfindex.dir/table/rc_format.cc.o.d"
  "/root/repo/src/table/schema.cc" "src/CMakeFiles/dgfindex.dir/table/schema.cc.o" "gcc" "src/CMakeFiles/dgfindex.dir/table/schema.cc.o.d"
  "/root/repo/src/table/statistics.cc" "src/CMakeFiles/dgfindex.dir/table/statistics.cc.o" "gcc" "src/CMakeFiles/dgfindex.dir/table/statistics.cc.o.d"
  "/root/repo/src/table/table.cc" "src/CMakeFiles/dgfindex.dir/table/table.cc.o" "gcc" "src/CMakeFiles/dgfindex.dir/table/table.cc.o.d"
  "/root/repo/src/table/text_format.cc" "src/CMakeFiles/dgfindex.dir/table/text_format.cc.o" "gcc" "src/CMakeFiles/dgfindex.dir/table/text_format.cc.o.d"
  "/root/repo/src/table/value.cc" "src/CMakeFiles/dgfindex.dir/table/value.cc.o" "gcc" "src/CMakeFiles/dgfindex.dir/table/value.cc.o.d"
  "/root/repo/src/workflow/workflow.cc" "src/CMakeFiles/dgfindex.dir/workflow/workflow.cc.o" "gcc" "src/CMakeFiles/dgfindex.dir/workflow/workflow.cc.o.d"
  "/root/repo/src/workload/meter_gen.cc" "src/CMakeFiles/dgfindex.dir/workload/meter_gen.cc.o" "gcc" "src/CMakeFiles/dgfindex.dir/workload/meter_gen.cc.o.d"
  "/root/repo/src/workload/query_gen.cc" "src/CMakeFiles/dgfindex.dir/workload/query_gen.cc.o" "gcc" "src/CMakeFiles/dgfindex.dir/workload/query_gen.cc.o.d"
  "/root/repo/src/workload/tpch_gen.cc" "src/CMakeFiles/dgfindex.dir/workload/tpch_gen.cc.o" "gcc" "src/CMakeFiles/dgfindex.dir/workload/tpch_gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
