# Empty dependencies file for dgfindex.
# This may be replaced when dependencies are built.
