file(REMOVE_RECURSE
  "libdgfindex.a"
)
