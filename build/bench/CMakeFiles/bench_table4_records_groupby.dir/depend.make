# Empty dependencies file for bench_table4_records_groupby.
# This may be replaced when dependencies are built.
