file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_records_groupby.dir/bench_table4_records_groupby.cc.o"
  "CMakeFiles/bench_table4_records_groupby.dir/bench_table4_records_groupby.cc.o.d"
  "bench_table4_records_groupby"
  "bench_table4_records_groupby.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_records_groupby.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
