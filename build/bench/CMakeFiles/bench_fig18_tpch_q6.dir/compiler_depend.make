# Empty compiler generated dependencies file for bench_fig18_tpch_q6.
# This may be replaced when dependencies are built.
