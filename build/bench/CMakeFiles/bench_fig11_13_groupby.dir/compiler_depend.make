# Empty compiler generated dependencies file for bench_fig11_13_groupby.
# This may be replaced when dependencies are built.
