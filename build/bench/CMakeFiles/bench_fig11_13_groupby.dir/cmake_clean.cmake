file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_13_groupby.dir/bench_fig11_13_groupby.cc.o"
  "CMakeFiles/bench_fig11_13_groupby.dir/bench_fig11_13_groupby.cc.o.d"
  "bench_fig11_13_groupby"
  "bench_fig11_13_groupby.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_13_groupby.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
