file(REMOVE_RECURSE
  "libdgf_bench_common.a"
)
