file(REMOVE_RECURSE
  "CMakeFiles/dgf_bench_common.dir/harness.cc.o"
  "CMakeFiles/dgf_bench_common.dir/harness.cc.o.d"
  "libdgf_bench_common.a"
  "libdgf_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dgf_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
