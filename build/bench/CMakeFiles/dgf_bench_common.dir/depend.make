# Empty dependencies file for dgf_bench_common.
# This may be replaced when dependencies are built.
