# Empty compiler generated dependencies file for bench_fig03_write_throughput.
# This may be replaced when dependencies are built.
