# Empty compiler generated dependencies file for bench_table3_records_agg.
# This may be replaced when dependencies are built.
