file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_records_agg.dir/bench_table3_records_agg.cc.o"
  "CMakeFiles/bench_table3_records_agg.dir/bench_table3_records_agg.cc.o.d"
  "bench_table3_records_agg"
  "bench_table3_records_agg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_records_agg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
