# Empty compiler generated dependencies file for bench_table6_tpch_records.
# This may be replaced when dependencies are built.
