file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_tpch_records.dir/bench_table6_tpch_records.cc.o"
  "CMakeFiles/bench_table6_tpch_records.dir/bench_table6_tpch_records.cc.o.d"
  "bench_table6_tpch_records"
  "bench_table6_tpch_records.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_tpch_records.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
