file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sliceskip.dir/bench_ablation_sliceskip.cc.o"
  "CMakeFiles/bench_ablation_sliceskip.dir/bench_ablation_sliceskip.cc.o.d"
  "bench_ablation_sliceskip"
  "bench_ablation_sliceskip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sliceskip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
