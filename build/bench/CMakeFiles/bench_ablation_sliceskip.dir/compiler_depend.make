# Empty compiler generated dependencies file for bench_ablation_sliceskip.
# This may be replaced when dependencies are built.
