file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_16_join.dir/bench_fig14_16_join.cc.o"
  "CMakeFiles/bench_fig14_16_join.dir/bench_fig14_16_join.cc.o.d"
  "bench_fig14_16_join"
  "bench_fig14_16_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_16_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
