# Empty compiler generated dependencies file for bench_fig14_16_join.
# This may be replaced when dependencies are built.
