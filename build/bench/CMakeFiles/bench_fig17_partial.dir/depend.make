# Empty dependencies file for bench_fig17_partial.
# This may be replaced when dependencies are built.
