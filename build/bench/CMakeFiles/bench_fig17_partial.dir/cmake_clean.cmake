file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_partial.dir/bench_fig17_partial.cc.o"
  "CMakeFiles/bench_fig17_partial.dir/bench_fig17_partial.cc.o.d"
  "bench_fig17_partial"
  "bench_fig17_partial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_partial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
