# Empty compiler generated dependencies file for bench_table5_tpch_build.
# This may be replaced when dependencies are built.
