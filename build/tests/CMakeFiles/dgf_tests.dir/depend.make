# Empty dependencies file for dgf_tests.
# This may be replaced when dependencies are built.
