
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/dgf_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/dgf_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/dgf_core_test.cc" "tests/CMakeFiles/dgf_tests.dir/dgf_core_test.cc.o" "gcc" "tests/CMakeFiles/dgf_tests.dir/dgf_core_test.cc.o.d"
  "/root/repo/tests/dgf_index_test.cc" "tests/CMakeFiles/dgf_tests.dir/dgf_index_test.cc.o" "gcc" "tests/CMakeFiles/dgf_tests.dir/dgf_index_test.cc.o.d"
  "/root/repo/tests/dgf_rcfile_test.cc" "tests/CMakeFiles/dgf_tests.dir/dgf_rcfile_test.cc.o" "gcc" "tests/CMakeFiles/dgf_tests.dir/dgf_rcfile_test.cc.o.d"
  "/root/repo/tests/exec_test.cc" "tests/CMakeFiles/dgf_tests.dir/exec_test.cc.o" "gcc" "tests/CMakeFiles/dgf_tests.dir/exec_test.cc.o.d"
  "/root/repo/tests/failure_injection_test.cc" "tests/CMakeFiles/dgf_tests.dir/failure_injection_test.cc.o" "gcc" "tests/CMakeFiles/dgf_tests.dir/failure_injection_test.cc.o.d"
  "/root/repo/tests/fs_test.cc" "tests/CMakeFiles/dgf_tests.dir/fs_test.cc.o" "gcc" "tests/CMakeFiles/dgf_tests.dir/fs_test.cc.o.d"
  "/root/repo/tests/hadoopdb_test.cc" "tests/CMakeFiles/dgf_tests.dir/hadoopdb_test.cc.o" "gcc" "tests/CMakeFiles/dgf_tests.dir/hadoopdb_test.cc.o.d"
  "/root/repo/tests/index_test.cc" "tests/CMakeFiles/dgf_tests.dir/index_test.cc.o" "gcc" "tests/CMakeFiles/dgf_tests.dir/index_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/dgf_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/dgf_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/kv_test.cc" "tests/CMakeFiles/dgf_tests.dir/kv_test.cc.o" "gcc" "tests/CMakeFiles/dgf_tests.dir/kv_test.cc.o.d"
  "/root/repo/tests/partition_test.cc" "tests/CMakeFiles/dgf_tests.dir/partition_test.cc.o" "gcc" "tests/CMakeFiles/dgf_tests.dir/partition_test.cc.o.d"
  "/root/repo/tests/partitioned_dgf_test.cc" "tests/CMakeFiles/dgf_tests.dir/partitioned_dgf_test.cc.o" "gcc" "tests/CMakeFiles/dgf_tests.dir/partitioned_dgf_test.cc.o.d"
  "/root/repo/tests/policy_advisor_test.cc" "tests/CMakeFiles/dgf_tests.dir/policy_advisor_test.cc.o" "gcc" "tests/CMakeFiles/dgf_tests.dir/policy_advisor_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/dgf_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/dgf_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/query_test.cc" "tests/CMakeFiles/dgf_tests.dir/query_test.cc.o" "gcc" "tests/CMakeFiles/dgf_tests.dir/query_test.cc.o.d"
  "/root/repo/tests/slice_optimizer_test.cc" "tests/CMakeFiles/dgf_tests.dir/slice_optimizer_test.cc.o" "gcc" "tests/CMakeFiles/dgf_tests.dir/slice_optimizer_test.cc.o.d"
  "/root/repo/tests/statistics_test.cc" "tests/CMakeFiles/dgf_tests.dir/statistics_test.cc.o" "gcc" "tests/CMakeFiles/dgf_tests.dir/statistics_test.cc.o.d"
  "/root/repo/tests/table_test.cc" "tests/CMakeFiles/dgf_tests.dir/table_test.cc.o" "gcc" "tests/CMakeFiles/dgf_tests.dir/table_test.cc.o.d"
  "/root/repo/tests/test_main.cc" "tests/CMakeFiles/dgf_tests.dir/test_main.cc.o" "gcc" "tests/CMakeFiles/dgf_tests.dir/test_main.cc.o.d"
  "/root/repo/tests/workflow_test.cc" "tests/CMakeFiles/dgf_tests.dir/workflow_test.cc.o" "gcc" "tests/CMakeFiles/dgf_tests.dir/workflow_test.cc.o.d"
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/dgf_tests.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/dgf_tests.dir/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dgfindex.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
